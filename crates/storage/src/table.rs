//! Materialized relations: a schema plus equal-length columns.

use crate::column::Column;
use crate::error::StorageError;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;
use std::fmt;

/// A fully materialized relation.
///
/// Invariants: `columns.len() == schema.len()` and all columns have equal
/// row counts. Used both for base tables in the [`crate::Catalog`] and for
/// every intermediate result in the engine (full-materialization model).
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    row_count: usize,
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Table {
        let columns = schema.columns().iter().map(|c| Column::empty(c.ty)).collect();
        Table { schema, columns, row_count: 0 }
    }

    /// Build a table from a schema and pre-built columns.
    ///
    /// Errors when arity or column lengths are inconsistent, or a column's
    /// type does not match its definition.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Table> {
        if schema.len() != columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        for (def, col) in schema.columns().iter().zip(&columns) {
            if def.ty != col.data_type() {
                return Err(StorageError::TypeMismatch {
                    expected: def.ty.sql_name().to_string(),
                    found: col.data_type().sql_name().to_string(),
                });
            }
        }
        let row_count = columns.first().map(Column::len).unwrap_or(0);
        if columns.iter().any(|c| c.len() != row_count) {
            return Err(StorageError::Internal("ragged columns in table".to_string()));
        }
        Ok(Table { schema, columns, row_count })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The table's columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at ordinal `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Case-insensitive column lookup by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of_ok(name)?;
        Ok(&self.columns[idx])
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// Append one row of values, enforcing arity, types and NOT NULL.
    pub fn append_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        for (i, value) in row.iter().enumerate() {
            let def = self.schema.column(i);
            if value.is_null() && !def.nullable {
                return Err(StorageError::NullViolation(def.name.clone()));
            }
        }
        // Validate all pushes will succeed before mutating any column, so a
        // failed append leaves the table unchanged.
        for (i, value) in row.iter().enumerate() {
            let def = self.schema.column(i);
            if let Some(vt) = value.data_type() {
                if !vt.coerces_to(def.ty) {
                    return Err(StorageError::TypeMismatch {
                        expected: def.ty.sql_name().to_string(),
                        found: vt.sql_name().to_string(),
                    });
                }
            }
        }
        for (i, value) in row.into_iter().enumerate() {
            self.columns[i].push(value).expect("types validated above");
        }
        self.row_count += 1;
        Ok(())
    }

    /// Append many rows.
    pub fn append_rows(&mut self, rows: Vec<Vec<Value>>) -> Result<()> {
        for row in rows {
            self.append_row(row)?;
        }
        Ok(())
    }

    /// Row `i` as a vector of values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Iterator over all rows.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.row_count).map(move |i| self.row(i))
    }

    /// Gather the rows at `indices` into a new table (positional selection).
    pub fn take(&self, indices: &[usize]) -> Table {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.take(indices)).collect();
        Table { schema: self.schema.clone(), columns, row_count: indices.len() }
    }

    /// Copy the contiguous row range `range` into a new table — the
    /// `LIMIT`/`OFFSET` fast path: no index vector is materialized and each
    /// column is a straight slice copy.
    ///
    /// # Panics
    /// Panics when the range extends past the table.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> Table {
        assert!(range.end <= self.row_count, "slice {range:?} out of range {}", self.row_count);
        let columns: Vec<Column> =
            self.columns.iter().map(|c| c.slice_rows(range.clone())).collect();
        Table { schema: self.schema.clone(), columns, row_count: range.len() }
    }

    /// Retain only rows whose index satisfies `keep` (used by DELETE).
    pub fn retain_rows(&mut self, keep: impl Fn(usize) -> bool) {
        let indices: Vec<usize> = (0..self.row_count).filter(|&i| keep(i)).collect();
        let taken = self.take(&indices);
        *self = taken;
    }

    /// Replace the value at `(row, col)` (used by UPDATE). The new value must
    /// type-check; this rebuilds the column cell-by-cell, which is acceptable
    /// for the engine's DML volumes.
    pub fn set_cell(&mut self, row: usize, col: usize, value: Value) -> Result<()> {
        let def = self.schema.column(col);
        if value.is_null() && !def.nullable {
            return Err(StorageError::NullViolation(def.name.clone()));
        }
        if let Some(vt) = value.data_type() {
            if !vt.coerces_to(def.ty) {
                return Err(StorageError::TypeMismatch {
                    expected: def.ty.sql_name().to_string(),
                    found: vt.sql_name().to_string(),
                });
            }
        }
        let old = &self.columns[col];
        let mut rebuilt = Column::empty(old.data_type());
        for i in 0..old.len() {
            let v = if i == row { value.clone() } else { old.get(i) };
            rebuilt.push(v)?;
        }
        self.columns[col] = rebuilt;
        Ok(())
    }

    /// Render the table in a simple aligned-text format (for the shell and
    /// examples).
    pub fn to_pretty_string(&self) -> String {
        let headers: Vec<String> = self.schema.names().map(str::to_string).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> =
            self.rows().map(|row| row.iter().map(Value::to_string).collect::<Vec<_>>()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out.push_str(&format!(
            "{} row{}\n",
            self.row_count,
            if self.row_count == 1 { "" } else { "s" }
        ));
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;

    fn persons_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("name", DataType::Varchar),
        ])
    }

    #[test]
    fn append_and_read_rows() {
        let mut t = Table::empty(persons_schema());
        t.append_row(vec![Value::Int(1), Value::from("ada")]).unwrap();
        t.append_row(vec![Value::Int(2), Value::Null]).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row(0), vec![Value::Int(1), Value::from("ada")]);
        assert!(t.row(1)[1].is_null());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::empty(persons_schema());
        let err = t.append_row(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { expected: 2, found: 1 }));
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn not_null_enforced() {
        let mut t = Table::empty(persons_schema());
        let err = t.append_row(vec![Value::Null, Value::from("x")]).unwrap_err();
        assert!(matches!(err, StorageError::NullViolation(_)));
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn failed_append_leaves_table_unchanged() {
        let mut t = Table::empty(persons_schema());
        t.append_row(vec![Value::Int(1), Value::from("a")]).unwrap();
        // Second column has wrong type; first column must not grow.
        let err = t.append_row(vec![Value::Int(2), Value::Bool(true)]).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.column(0).len(), 1);
        assert_eq!(t.column(1).len(), 1);
    }

    #[test]
    fn take_selects_rows() {
        let mut t = Table::empty(persons_schema());
        for i in 0..5 {
            t.append_row(vec![Value::Int(i), Value::from(format!("p{i}"))]).unwrap();
        }
        let s = t.take(&[4, 0]);
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.row(0)[0], Value::Int(4));
        assert_eq!(s.row(1)[0], Value::Int(0));
    }

    #[test]
    fn slice_rows_matches_take_on_contiguous_ranges() {
        let mut t = Table::empty(persons_schema());
        for i in 0..100 {
            t.append_row(vec![Value::Int(i), Value::from(format!("p{i}"))]).unwrap();
        }
        for (start, end) in [(0usize, 0usize), (0, 100), (3, 70), (99, 100), (64, 96)] {
            let sliced = t.slice_rows(start..end);
            let taken = t.take(&(start..end).collect::<Vec<_>>());
            assert_eq!(sliced.row_count(), taken.row_count(), "{start}..{end}");
            for r in 0..sliced.row_count() {
                assert_eq!(sliced.row(r), taken.row(r), "{start}..{end} row {r}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_rows_out_of_range_panics() {
        let mut t = Table::empty(persons_schema());
        t.append_row(vec![Value::Int(1), Value::from("a")]).unwrap();
        t.slice_rows(0..2);
    }

    #[test]
    fn retain_rows_deletes() {
        let mut t = Table::empty(persons_schema());
        for i in 0..4 {
            t.append_row(vec![Value::Int(i), Value::from("x")]).unwrap();
        }
        t.retain_rows(|i| i % 2 == 0);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row(1)[0], Value::Int(2));
    }

    #[test]
    fn set_cell_updates() {
        let mut t = Table::empty(persons_schema());
        t.append_row(vec![Value::Int(1), Value::from("a")]).unwrap();
        t.set_cell(0, 1, Value::from("b")).unwrap();
        assert_eq!(t.row(0)[1], Value::from("b"));
        assert!(t.set_cell(0, 0, Value::Null).is_err()); // NOT NULL
    }

    #[test]
    fn from_columns_validates() {
        let schema = persons_schema();
        let ok = Table::from_columns(
            schema.clone(),
            vec![Column::from_ints(vec![1]), Column::from_strs(vec!["a".into()])],
        );
        assert!(ok.is_ok());
        let ragged = Table::from_columns(
            schema.clone(),
            vec![Column::from_ints(vec![1, 2]), Column::from_strs(vec!["a".into()])],
        );
        assert!(ragged.is_err());
        let wrong_type = Table::from_columns(
            schema,
            vec![Column::from_ints(vec![1]), Column::from_ints(vec![2])],
        );
        assert!(wrong_type.is_err());
    }

    #[test]
    fn pretty_print_contains_headers_and_rows() {
        let mut t = Table::empty(persons_schema());
        t.append_row(vec![Value::Int(7), Value::from("grace")]).unwrap();
        let s = t.to_pretty_string();
        assert!(s.contains("id"));
        assert!(s.contains("grace"));
        assert!(s.contains("1 row"));
    }
}
