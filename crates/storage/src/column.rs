//! Typed, contiguous columns — the engine's unit of bulk data, analogous to
//! MonetDB BATs.

use crate::bitmap::Bitmap;
use crate::error::StorageError;
use crate::types::DataType;
use crate::value::{PathValue, Value};
use crate::Result;

/// A typed column of values plus a validity bitmap (bit set = non-NULL).
///
/// All operators in the engine are column-at-a-time: they consume whole
/// columns and produce whole columns, mirroring the MonetDB execution model
/// the paper's prototype was embedded in.
#[derive(Debug, Clone)]
pub enum Column {
    /// `INTEGER` column.
    Int(Vec<i64>, Bitmap),
    /// `DOUBLE` column.
    Double(Vec<f64>, Bitmap),
    /// `VARCHAR` column.
    Str(Vec<String>, Bitmap),
    /// `BOOLEAN` column.
    Bool(Vec<bool>, Bitmap),
    /// `DATE` column (days since epoch).
    Date(Vec<i32>, Bitmap),
    /// Nested-table path column. NULL entries are `None`.
    Path(Vec<Option<PathValue>>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(ty: DataType) -> Column {
        match ty {
            DataType::Int => Column::Int(Vec::new(), Bitmap::new()),
            DataType::Double => Column::Double(Vec::new(), Bitmap::new()),
            DataType::Varchar => Column::Str(Vec::new(), Bitmap::new()),
            DataType::Bool => Column::Bool(Vec::new(), Bitmap::new()),
            DataType::Date => Column::Date(Vec::new(), Bitmap::new()),
            DataType::Path => Column::Path(Vec::new()),
        }
    }

    /// Column of `len` NULLs of the given type.
    pub fn nulls(ty: DataType, len: usize) -> Column {
        match ty {
            DataType::Int => Column::Int(vec![0; len], Bitmap::with_value(len, false)),
            DataType::Double => Column::Double(vec![0.0; len], Bitmap::with_value(len, false)),
            DataType::Varchar => {
                Column::Str(vec![String::new(); len], Bitmap::with_value(len, false))
            }
            DataType::Bool => Column::Bool(vec![false; len], Bitmap::with_value(len, false)),
            DataType::Date => Column::Date(vec![0; len], Bitmap::with_value(len, false)),
            DataType::Path => Column::Path(vec![None; len]),
        }
    }

    /// Build an `Int` column with no NULLs from raw values.
    pub fn from_ints(values: Vec<i64>) -> Column {
        let n = values.len();
        Column::Int(values, Bitmap::with_value(n, true))
    }

    /// Build a `Double` column with no NULLs from raw values.
    pub fn from_doubles(values: Vec<f64>) -> Column {
        let n = values.len();
        Column::Double(values, Bitmap::with_value(n, true))
    }

    /// Build a `Str` column with no NULLs from raw values.
    pub fn from_strs(values: Vec<String>) -> Column {
        let n = values.len();
        Column::Str(values, Bitmap::with_value(n, true))
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(..) => DataType::Int,
            Column::Double(..) => DataType::Double,
            Column::Str(..) => DataType::Varchar,
            Column::Bool(..) => DataType::Bool,
            Column::Date(..) => DataType::Date,
            Column::Path(..) => DataType::Path,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v, _) => v.len(),
            Column::Double(v, _) => v.len(),
            Column::Str(v, _) => v.len(),
            Column::Bool(v, _) => v.len(),
            Column::Date(v, _) => v.len(),
            Column::Path(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Int(_, b)
            | Column::Double(_, b)
            | Column::Str(_, b)
            | Column::Bool(_, b)
            | Column::Date(_, b) => !b.get(i),
            Column::Path(v) => v[i].is_none(),
        }
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(_, b)
            | Column::Double(_, b)
            | Column::Str(_, b)
            | Column::Bool(_, b)
            | Column::Date(_, b) => b.len() - b.count_ones(),
            Column::Path(v) => v.iter().filter(|p| p.is_none()).count(),
        }
    }

    /// Cell value at row `i` (boxed into a [`Value`]).
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int(v, b) => {
                if b.get(i) {
                    Value::Int(v[i])
                } else {
                    Value::Null
                }
            }
            Column::Double(v, b) => {
                if b.get(i) {
                    Value::Double(v[i])
                } else {
                    Value::Null
                }
            }
            Column::Str(v, b) => {
                if b.get(i) {
                    Value::Str(v[i].clone())
                } else {
                    Value::Null
                }
            }
            Column::Bool(v, b) => {
                if b.get(i) {
                    Value::Bool(v[i])
                } else {
                    Value::Null
                }
            }
            Column::Date(v, b) => {
                if b.get(i) {
                    Value::Date(crate::Date(v[i]))
                } else {
                    Value::Null
                }
            }
            Column::Path(v) => match &v[i] {
                Some(p) => Value::Path(p.clone()),
                None => Value::Null,
            },
        }
    }

    /// Append a [`Value`], type-checking against the column type.
    pub fn push(&mut self, value: Value) -> Result<()> {
        let mismatch = |c: &Column, v: &Value| StorageError::TypeMismatch {
            expected: c.data_type().sql_name().to_string(),
            found: v
                .data_type()
                .map(|t| t.sql_name().to_string())
                .unwrap_or_else(|| "NULL".to_string()),
        };
        match (&mut *self, value) {
            (Column::Int(v, b), Value::Int(x)) => {
                v.push(x);
                b.push(true);
            }
            (Column::Int(v, b), Value::Null) => {
                v.push(0);
                b.push(false);
            }
            (Column::Double(v, b), Value::Double(x)) => {
                v.push(x);
                b.push(true);
            }
            // SQL numeric widening: an INTEGER literal may be stored in a
            // DOUBLE column.
            (Column::Double(v, b), Value::Int(x)) => {
                v.push(x as f64);
                b.push(true);
            }
            (Column::Double(v, b), Value::Null) => {
                v.push(0.0);
                b.push(false);
            }
            (Column::Str(v, b), Value::Str(x)) => {
                v.push(x);
                b.push(true);
            }
            (Column::Str(v, b), Value::Null) => {
                v.push(String::new());
                b.push(false);
            }
            (Column::Bool(v, b), Value::Bool(x)) => {
                v.push(x);
                b.push(true);
            }
            (Column::Bool(v, b), Value::Null) => {
                v.push(false);
                b.push(false);
            }
            (Column::Date(v, b), Value::Date(x)) => {
                v.push(x.0);
                b.push(true);
            }
            (Column::Date(v, b), Value::Null) => {
                v.push(0);
                b.push(false);
            }
            (Column::Path(v), Value::Path(p)) => v.push(Some(p)),
            (Column::Path(v), Value::Null) => v.push(None),
            (c, v) => return Err(mismatch(c, &v)),
        }
        Ok(())
    }

    /// Gather rows at `indices` into a new column (the positional join /
    /// projection primitive of a materializing engine).
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v, b) => {
                Column::Int(indices.iter().map(|&i| v[i]).collect(), b.take(indices))
            }
            Column::Double(v, b) => {
                Column::Double(indices.iter().map(|&i| v[i]).collect(), b.take(indices))
            }
            Column::Str(v, b) => {
                Column::Str(indices.iter().map(|&i| v[i].clone()).collect(), b.take(indices))
            }
            Column::Bool(v, b) => {
                Column::Bool(indices.iter().map(|&i| v[i]).collect(), b.take(indices))
            }
            Column::Date(v, b) => {
                Column::Date(indices.iter().map(|&i| v[i]).collect(), b.take(indices))
            }
            Column::Path(v) => Column::Path(indices.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Copy the contiguous row range `range` into a new column. Unlike
    /// [`Column::take`] this is a straight memcpy of the value slice (plus a
    /// word-level bitmap copy) — the `LIMIT`/`OFFSET` fast path.
    ///
    /// # Panics
    /// Panics when the range extends past the column.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> Column {
        match self {
            Column::Int(v, b) => Column::Int(v[range.clone()].to_vec(), b.slice(range)),
            Column::Double(v, b) => Column::Double(v[range.clone()].to_vec(), b.slice(range)),
            Column::Str(v, b) => Column::Str(v[range.clone()].to_vec(), b.slice(range)),
            Column::Bool(v, b) => Column::Bool(v[range.clone()].to_vec(), b.slice(range)),
            Column::Date(v, b) => Column::Date(v[range.clone()].to_vec(), b.slice(range)),
            Column::Path(v) => Column::Path(v[range].to_vec()),
        }
    }

    /// Append all rows of `other` (must have the same type).
    pub fn extend_from(&mut self, other: &Column) -> Result<()> {
        if self.data_type() != other.data_type() {
            return Err(StorageError::TypeMismatch {
                expected: self.data_type().sql_name().to_string(),
                found: other.data_type().sql_name().to_string(),
            });
        }
        match (self, other) {
            (Column::Int(v, b), Column::Int(ov, ob)) => {
                v.extend_from_slice(ov);
                b.extend_from(ob);
            }
            (Column::Double(v, b), Column::Double(ov, ob)) => {
                v.extend_from_slice(ov);
                b.extend_from(ob);
            }
            (Column::Str(v, b), Column::Str(ov, ob)) => {
                v.extend_from_slice(ov);
                b.extend_from(ob);
            }
            (Column::Bool(v, b), Column::Bool(ov, ob)) => {
                v.extend_from_slice(ov);
                b.extend_from(ob);
            }
            (Column::Date(v, b), Column::Date(ov, ob)) => {
                v.extend_from_slice(ov);
                b.extend_from(ob);
            }
            (Column::Path(v), Column::Path(ov)) => v.extend_from_slice(ov),
            _ => unreachable!("type equality checked above"),
        }
        Ok(())
    }

    /// Iterator over all cells as [`Value`]s.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Borrow the raw i64 data and validity of an `Int` column.
    pub fn as_int_slice(&self) -> Option<(&[i64], &Bitmap)> {
        match self {
            Column::Int(v, b) => Some((v, b)),
            _ => None,
        }
    }

    /// Borrow the raw f64 data and validity of a `Double` column.
    pub fn as_double_slice(&self) -> Option<(&[f64], &Bitmap)> {
        match self {
            Column::Double(v, b) => Some((v, b)),
            _ => None,
        }
    }

    /// Borrow the raw string data and validity of a `Str` column.
    pub fn as_str_slice(&self) -> Option<(&[String], &Bitmap)> {
        match self {
            Column::Str(v, b) => Some((v, b)),
            _ => None,
        }
    }
}

/// Incremental builder for a [`Column`] of a known type.
#[derive(Debug)]
pub struct ColumnBuilder {
    column: Column,
}

impl ColumnBuilder {
    /// Start building a column of type `ty`.
    pub fn new(ty: DataType) -> ColumnBuilder {
        ColumnBuilder { column: Column::empty(ty) }
    }

    /// Append one value.
    pub fn push(&mut self, value: Value) -> Result<()> {
        self.column.push(value)
    }

    /// Current number of rows.
    pub fn len(&self) -> usize {
        self.column.len()
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.column.is_empty()
    }

    /// Finish and return the column.
    pub fn finish(self) -> Column {
        self.column
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;

    #[test]
    fn push_and_get_round_trip_all_types() {
        let cases: Vec<(DataType, Vec<Value>)> = vec![
            (DataType::Int, vec![Value::Int(1), Value::Null, Value::Int(-7)]),
            (DataType::Double, vec![Value::Double(1.5), Value::Null]),
            (DataType::Varchar, vec![Value::from("a"), Value::Null, Value::from("")]),
            (DataType::Bool, vec![Value::Bool(true), Value::Null, Value::Bool(false)]),
            (DataType::Date, vec![Value::Date(Date(15000)), Value::Null]),
        ];
        for (ty, values) in cases {
            let mut col = Column::empty(ty);
            for v in &values {
                col.push(v.clone()).unwrap();
            }
            assert_eq!(col.len(), values.len());
            for (i, v) in values.iter().enumerate() {
                assert_eq!(&col.get(i), v, "type {ty} row {i}");
            }
        }
    }

    #[test]
    fn int_widens_into_double_column() {
        let mut col = Column::empty(DataType::Double);
        col.push(Value::Int(3)).unwrap();
        assert_eq!(col.get(0), Value::Double(3.0));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut col = Column::empty(DataType::Int);
        let err = col.push(Value::from("oops")).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn take_gathers_rows_with_nulls() {
        let mut col = Column::empty(DataType::Int);
        for v in [Value::Int(10), Value::Null, Value::Int(30), Value::Int(40)] {
            col.push(v).unwrap();
        }
        let taken = col.take(&[3, 1, 0]);
        assert_eq!(taken.get(0), Value::Int(40));
        assert!(taken.get(1).is_null());
        assert_eq!(taken.get(2), Value::Int(10));
    }

    #[test]
    fn extend_concatenates_and_checks_type() {
        let mut a = Column::from_ints(vec![1, 2]);
        let b = Column::from_ints(vec![3]);
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(2), Value::Int(3));

        let c = Column::from_strs(vec!["x".into()]);
        assert!(a.extend_from(&c).is_err());
    }

    #[test]
    fn nulls_constructor() {
        let col = Column::nulls(DataType::Varchar, 5);
        assert_eq!(col.len(), 5);
        assert_eq!(col.null_count(), 5);
        assert!(col.get(4).is_null());
    }

    #[test]
    fn null_count_mixed() {
        let mut col = Column::empty(DataType::Int);
        for v in [Value::Int(1), Value::Null, Value::Null, Value::Int(2)] {
            col.push(v).unwrap();
        }
        assert_eq!(col.null_count(), 2);
    }

    #[test]
    fn builder_finishes_into_column() {
        let mut b = ColumnBuilder::new(DataType::Bool);
        assert!(b.is_empty());
        b.push(Value::Bool(true)).unwrap();
        b.push(Value::Null).unwrap();
        assert_eq!(b.len(), 2);
        let col = b.finish();
        assert_eq!(col.get(0), Value::Bool(true));
        assert!(col.get(1).is_null());
    }
}
