//! Property-based tests for the storage layer: bitmap, column and table
//! operations are checked against simple `Vec`-based models.

use gsql_storage::{Bitmap, Column, ColumnDef, DataType, Date, Schema, Table, Value};
use proptest::prelude::*;

/// Arbitrary values for a given column type (with NULLs mixed in).
fn value_for(ty: DataType) -> BoxedStrategy<Value> {
    match ty {
        DataType::Int => prop_oneof![
            3 => any::<i32>().prop_map(|v| Value::Int(v as i64)),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Double => prop_oneof![
            3 => (-1000i32..1000, 1u32..50).prop_map(|(a, b)| Value::Double(a as f64 / b as f64)),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Varchar => prop_oneof![
            3 => "[a-z]{0,8}".prop_map(Value::from),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Bool => prop_oneof![
            3 => any::<bool>().prop_map(Value::Bool),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Date => prop_oneof![
            3 => (-20000i32..20000).prop_map(|d| Value::Date(Date(d))),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Path => Just(Value::Null).boxed(),
    }
}

fn column_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Int),
        Just(DataType::Double),
        Just(DataType::Varchar),
        Just(DataType::Bool),
        Just(DataType::Date),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bitmap behaves exactly like Vec<bool> under push/get/set/count.
    #[test]
    fn bitmap_matches_vec_model(ops in prop::collection::vec((0usize..64, any::<bool>()), 0..200)) {
        let mut bm = Bitmap::new();
        let mut model: Vec<bool> = Vec::new();
        for (pos, bit) in ops {
            if model.is_empty() || pos % 3 == 0 {
                bm.push(bit);
                model.push(bit);
            } else {
                let i = pos % model.len();
                bm.set(i, bit);
                model[i] = bit;
            }
        }
        prop_assert_eq!(bm.len(), model.len());
        prop_assert_eq!(bm.count_ones(), model.iter().filter(|&&b| b).count());
        for (i, &b) in model.iter().enumerate() {
            prop_assert_eq!(bm.get(i), b);
        }
        prop_assert_eq!(bm.iter().collect::<Vec<_>>(), model);
    }

    /// Column push/get round-trips for every type; take() gathers exactly
    /// like indexing the model.
    #[test]
    fn column_matches_vec_model(
        ty in column_type(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let values: Vec<Value> = seed
            .iter()
            .map(|_| value_for(ty).new_tree(runner).unwrap().current())
            .collect();
        let mut col = Column::empty(ty);
        for v in &values {
            col.push(v.clone()).unwrap();
        }
        prop_assert_eq!(col.len(), values.len());
        prop_assert_eq!(col.null_count(), values.iter().filter(|v| v.is_null()).count());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&col.get(i), v);
        }
        // Gather under a pseudo-random permutation with repeats.
        if !values.is_empty() {
            let indices: Vec<usize> =
                seed.iter().map(|&s| s as usize % values.len()).collect();
            let taken = col.take(&indices);
            for (out_i, &src_i) in indices.iter().enumerate() {
                prop_assert_eq!(&taken.get(out_i), &values[src_i]);
            }
        }
    }

    /// extend_from concatenates: result equals model_a ++ model_b.
    #[test]
    fn column_extend_matches_concat(
        ty in column_type(),
        len_a in 0usize..40,
        len_b in 0usize..40,
    ) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let gen = |n: usize, runner: &mut proptest::test_runner::TestRunner| -> Vec<Value> {
            (0..n).map(|_| value_for(ty).new_tree(runner).unwrap().current()).collect()
        };
        let a_vals = gen(len_a, runner);
        let b_vals = gen(len_b, runner);
        let mut a = Column::empty(ty);
        for v in &a_vals {
            a.push(v.clone()).unwrap();
        }
        let mut b = Column::empty(ty);
        for v in &b_vals {
            b.push(v.clone()).unwrap();
        }
        a.extend_from(&b).unwrap();
        let expect: Vec<Value> = a_vals.iter().chain(&b_vals).cloned().collect();
        prop_assert_eq!(a.len(), expect.len());
        for (i, v) in expect.iter().enumerate() {
            prop_assert_eq!(&a.get(i), v);
        }
    }

    /// Table append/take/retain keep rows consistent with a Vec<Vec<Value>>
    /// model.
    #[test]
    fn table_matches_row_model(
        n_rows in 0usize..50,
        keep_mod in 1usize..5,
    ) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let schema = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Varchar),
        ]);
        let mut table = Table::empty(schema);
        let mut model: Vec<Vec<Value>> = Vec::new();
        for _ in 0..n_rows {
            let row = vec![
                value_for(DataType::Int).new_tree(runner).unwrap().current(),
                value_for(DataType::Varchar).new_tree(runner).unwrap().current(),
            ];
            table.append_row(row.clone()).unwrap();
            model.push(row);
        }
        prop_assert_eq!(table.row_count(), model.len());
        for (i, row) in model.iter().enumerate() {
            prop_assert_eq!(&table.row(i), row);
        }
        // retain every keep_mod-th row.
        table.retain_rows(|i| i % keep_mod == 0);
        let expect: Vec<&Vec<Value>> =
            model.iter().enumerate().filter(|(i, _)| i % keep_mod == 0).map(|(_, r)| r).collect();
        prop_assert_eq!(table.row_count(), expect.len());
        for (i, row) in expect.iter().enumerate() {
            prop_assert_eq!(&&table.row(i), row);
        }
    }

    /// Date ymd <-> days round trip over the whole supported range.
    #[test]
    fn date_round_trips(days in -100_000i32..100_000) {
        let d = Date(days);
        let (y, m, dd) = d.ymd();
        prop_assert_eq!(Date::from_ymd(y, m, dd).unwrap().days(), days);
        // Display -> parse round trip for CE years.
        if (1..=9999).contains(&y) {
            let s = d.to_string();
            prop_assert_eq!(Date::parse(&s).unwrap(), d);
        }
    }

    /// Value total ordering is a total order (antisymmetric + transitive on
    /// sampled triples) and consistent with sql_eq for same-type values.
    #[test]
    fn value_ordering_is_consistent(
        ty in column_type(),
        n in 3usize..12,
    ) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let vals: Vec<Value> =
            (0..n).map(|_| value_for(ty).new_tree(runner).unwrap().current()).collect();
        for a in &vals {
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                prop_assert_eq!(ab, ba.reverse(), "antisymmetry {} vs {}", a, b);
                for c in &vals {
                    if ab != std::cmp::Ordering::Greater
                        && b.total_cmp(c) != std::cmp::Ordering::Greater
                    {
                        prop_assert_ne!(
                            a.total_cmp(c),
                            std::cmp::Ordering::Greater,
                            "transitivity {} {} {}", a, b, c
                        );
                    }
                }
            }
        }
    }

    /// CSV round trip for arbitrary tables (no PATH columns).
    #[test]
    fn csv_round_trips_tables(n_rows in 0usize..30) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let schema = Schema::new(vec![
            ColumnDef::new("i", DataType::Int),
            ColumnDef::new("s", DataType::Varchar),
            ColumnDef::new("d", DataType::Date),
            ColumnDef::new("b", DataType::Bool),
        ]);
        let mut table = Table::empty(schema.clone());
        for _ in 0..n_rows {
            table
                .append_row(vec![
                    value_for(DataType::Int).new_tree(runner).unwrap().current(),
                    value_for(DataType::Varchar).new_tree(runner).unwrap().current(),
                    value_for(DataType::Date).new_tree(runner).unwrap().current(),
                    value_for(DataType::Bool).new_tree(runner).unwrap().current(),
                ])
                .unwrap();
        }
        let csv = gsql_storage::csv::to_csv_string(&table).unwrap();
        let back = gsql_storage::csv::from_csv_string(schema, &csv).unwrap();
        prop_assert_eq!(back.row_count(), table.row_count());
        for i in 0..table.row_count() {
            prop_assert_eq!(back.row(i), table.row(i));
        }
    }
}
