//! Property-style equivalence: ALT distances must equal plain Dijkstra on
//! random weighted digraphs, for every landmark count and for index builds
//! at `threads = 1` and `threads = 4` (which must also produce identical
//! indexes). Uses the workspace's offline `rand` shim, so it runs by
//! default in every CI configuration.

use gsql_accel::{alt_bidirectional, Landmarks};
use gsql_graph::{bfs, dijkstra_int, reverse_csr_with_threads, Csr};
use rand::prelude::*;

struct Case {
    graph: Csr,
    reverse: Csr,
    raw: Vec<i64>,
}

fn random_case(rng: &mut StdRng, max_n: u32, max_m: usize) -> Case {
    let n = rng.gen_range(2..max_n);
    let m = rng.gen_range(1..max_m);
    let src: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
    let dst: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
    let raw: Vec<i64> = (0..m).map(|_| rng.gen_range(1..100)).collect();
    let graph = Csr::from_edges(n, &src, &dst).unwrap();
    let reverse = reverse_csr_with_threads(&graph, 2);
    Case { graph, reverse, raw }
}

#[test]
fn weighted_alt_equals_dijkstra_at_threads_1_and_4() {
    let mut rng = StdRng::seed_from_u64(0xa17);
    for case_no in 0..30 {
        let case = random_case(&mut rng, 50, 250);
        let wf = case.graph.permute_weights_int(&case.raw).unwrap();
        let wb = case.reverse.permute_weights_int(&case.raw).unwrap();
        let k = rng.gen_range(1..8);
        let seq = Landmarks::build(&case.graph, &case.reverse, Some((&wf, &wb)), k, 1);
        let par = Landmarks::build(&case.graph, &case.reverse, Some((&wf, &wb)), k, 4);
        assert_eq!(seq.landmarks(), par.landmarks(), "case {case_no}: selection diverged");
        let n = case.graph.num_vertices();
        for _ in 0..10 {
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            let truth = dijkstra_int(&case.graph, s, &[], &wf).dist[d as usize];
            let expected = if truth == u64::MAX { None } else { Some(truth) };
            for (label, lm) in [("threads=1", &seq), ("threads=4", &par)] {
                let alt = alt_bidirectional(&case.graph, &case.reverse, Some((&wf, &wb)), lm, s, d);
                assert_eq!(alt.dist, expected, "case {case_no} {label} pair ({s}, {d}) k {k}");
            }
        }
    }
}

#[test]
fn unweighted_alt_equals_bfs_hops() {
    let mut rng = StdRng::seed_from_u64(0xb0b);
    for case_no in 0..30 {
        let case = random_case(&mut rng, 60, 200);
        let k = rng.gen_range(1..6);
        let lm1 = Landmarks::build(&case.graph, &case.reverse, None, k, 1);
        let lm4 = Landmarks::build(&case.graph, &case.reverse, None, k, 4);
        let n = case.graph.num_vertices();
        for _ in 0..10 {
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            let hops = bfs(&case.graph, s, &[]).dist[d as usize];
            let expected = if hops == u32::MAX { None } else { Some(hops as u64) };
            for (label, lm) in [("threads=1", &lm1), ("threads=4", &lm4)] {
                let alt = alt_bidirectional(&case.graph, &case.reverse, None, lm, s, d);
                assert_eq!(alt.dist, expected, "case {case_no} {label} pair ({s}, {d})");
            }
        }
    }
}

#[test]
fn lower_bounds_are_admissible_everywhere() {
    let mut rng = StdRng::seed_from_u64(0x1b);
    for case_no in 0..15 {
        let case = random_case(&mut rng, 30, 120);
        let wf = case.graph.permute_weights_int(&case.raw).unwrap();
        let wb = case.reverse.permute_weights_int(&case.raw).unwrap();
        let lm = Landmarks::build(&case.graph, &case.reverse, Some((&wf, &wb)), 4, 2);
        let n = case.graph.num_vertices();
        for s in 0..n {
            let truth = dijkstra_int(&case.graph, s, &[], &wf).dist;
            for v in 0..n {
                let lb = lm.lower_bound(s, v);
                let d = truth[v as usize];
                if d == u64::MAX {
                    continue; // any bound (including INF) is admissible
                }
                assert!(lb <= d, "case {case_no}: lb({s},{v}) = {lb} > true {d}");
            }
        }
    }
}

#[test]
fn dense_and_sparse_extremes() {
    // Complete-ish digraph (every search is one hop) and a bare chain.
    let n = 20u32;
    let mut src = Vec::new();
    let mut dst = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                src.push(a);
                dst.push(b);
            }
        }
    }
    let g = Csr::from_edges(n, &src, &dst).unwrap();
    let r = reverse_csr_with_threads(&g, 4);
    let lm = Landmarks::build(&g, &r, None, 8, 4);
    for s in 0..n {
        for d in 0..n {
            let expected = if s == d { 0 } else { 1 };
            let alt = alt_bidirectional(&g, &r, None, &lm, s, d);
            assert_eq!(alt.dist, Some(expected), "pair ({s}, {d})");
        }
    }
}
