//! Property-style equivalence for the batched many-to-many tier: the
//! bucket-based CH matrix and the multi-target ALT matrix must both equal
//! per-source Dijkstra on random weighted digraphs — disconnected pairs,
//! zero-weight edges, duplicate and asymmetric source/target sets included
//! — and must be bit-identical at `threads = 1` and `threads = 4`. Uses
//! the workspace's offline `rand` shim, so it runs by default in every CI
//! configuration.

use gsql_accel::{alt_many_to_many, ch_many_to_many, ContractionHierarchy, Landmarks, INF};
use gsql_graph::{bfs, dijkstra_int, reverse_csr, Csr};
use rand::prelude::*;

struct Case {
    graph: Csr,
    raw: Vec<i64>,
}

fn random_case(rng: &mut StdRng, max_n: u32, max_m: usize, min_weight: i64) -> Case {
    let n = rng.gen_range(2..max_n);
    let m = rng.gen_range(1..max_m);
    let src: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
    let dst: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
    let raw: Vec<i64> = (0..m).map(|_| rng.gen_range(min_weight..100)).collect();
    let graph = Csr::from_edges(n, &src, &dst).unwrap();
    Case { graph, raw }
}

/// Slot-order weights without the strict-positivity validation of
/// `permute_weights_int` (zero weights are legal at this layer).
fn slot_weights(graph: &Csr, raw: &[i64]) -> Vec<i64> {
    (0..graph.num_edges()).map(|slot| raw[graph.edge_row(slot) as usize]).collect()
}

/// Random vertex multiset: duplicates are deliberately likely, so the
/// drivers' dedup/index-mapping paths get exercised.
fn random_side(rng: &mut StdRng, n: u32, len: usize) -> Vec<u32> {
    (0..len).map(|_| rng.gen_range(0..n)).collect()
}

/// Row-major truth matrix via one full Dijkstra (or BFS) per source.
fn truth_matrix(g: &Csr, weights: Option<&[i64]>, sources: &[u32], targets: &[u32]) -> Vec<u64> {
    let mut out = Vec::with_capacity(sources.len() * targets.len());
    for &s in sources {
        match weights {
            Some(w) => {
                let d = dijkstra_int(g, s, &[], w).dist;
                out.extend(targets.iter().map(|&t| d[t as usize]));
            }
            None => {
                let d = bfs(g, s, &[]).dist;
                out.extend(targets.iter().map(|&t| {
                    if d[t as usize] == u32::MAX {
                        INF
                    } else {
                        d[t as usize] as u64
                    }
                }));
            }
        }
    }
    out
}

#[test]
fn weighted_matrices_equal_dijkstra_at_threads_1_and_4() {
    let mut rng = StdRng::seed_from_u64(0x3232);
    for case_no in 0..20 {
        let case = random_case(&mut rng, 50, 250, 1);
        let n = case.graph.num_vertices();
        let wf = case.graph.permute_weights_int(&case.raw).unwrap();
        let rev = reverse_csr(&case.graph);
        let wb = rev.permute_weights_int(&case.raw).unwrap();
        let ch = ContractionHierarchy::build(&case.graph, Some(&wf), 1);
        let lm = Landmarks::build(&case.graph, &rev, Some((&wf, &wb)), 4, 1);
        // Asymmetric sides, duplicates likely.
        let s_len = rng.gen_range(1..8);
        let t_len = rng.gen_range(1..12);
        let sources = random_side(&mut rng, n, s_len);
        let targets = random_side(&mut rng, n, t_len);
        let truth = truth_matrix(&case.graph, Some(&wf), &sources, &targets);
        for threads in [1, 4] {
            let m = ch_many_to_many(&ch, &sources, &targets, threads, None).unwrap();
            assert_eq!(m.dist, truth, "case {case_no} ch threads {threads}");
            let a =
                alt_many_to_many(&case.graph, Some(&wf), &lm, &sources, &targets, threads, None)
                    .unwrap();
            assert_eq!(a.dist, truth, "case {case_no} alt threads {threads}");
        }
    }
}

#[test]
fn zero_weight_matrices_stay_exact() {
    let mut rng = StdRng::seed_from_u64(0x0e00);
    for case_no in 0..15 {
        let case = random_case(&mut rng, 40, 200, 0);
        let n = case.graph.num_vertices();
        let wf = slot_weights(&case.graph, &case.raw);
        let rev = reverse_csr(&case.graph);
        let wb = slot_weights(&rev, &case.raw);
        let ch = ContractionHierarchy::build(&case.graph, Some(&wf), 1);
        let lm = Landmarks::build(&case.graph, &rev, Some((&wf, &wb)), 3, 1);
        let sources = random_side(&mut rng, n, 5);
        let targets = random_side(&mut rng, n, 7);
        let truth = truth_matrix(&case.graph, Some(&wf), &sources, &targets);
        for threads in [1, 4] {
            let m = ch_many_to_many(&ch, &sources, &targets, threads, None).unwrap();
            assert_eq!(m.dist, truth, "case {case_no} ch threads {threads}");
            let a =
                alt_many_to_many(&case.graph, Some(&wf), &lm, &sources, &targets, threads, None)
                    .unwrap();
            assert_eq!(a.dist, truth, "case {case_no} alt threads {threads}");
        }
    }
}

#[test]
fn unweighted_matrices_equal_bfs_hops() {
    let mut rng = StdRng::seed_from_u64(0xbeef);
    for case_no in 0..20 {
        let case = random_case(&mut rng, 60, 200, 1);
        let n = case.graph.num_vertices();
        let rev = reverse_csr(&case.graph);
        let ch = ContractionHierarchy::build(&case.graph, None, 1);
        let lm = Landmarks::build(&case.graph, &rev, None, 4, 1);
        let sources = random_side(&mut rng, n, 6);
        let targets = random_side(&mut rng, n, 6);
        let truth = truth_matrix(&case.graph, None, &sources, &targets);
        for threads in [1, 4] {
            let m = ch_many_to_many(&ch, &sources, &targets, threads, None).unwrap();
            assert_eq!(m.dist, truth, "case {case_no} ch threads {threads}");
            let a = alt_many_to_many(&case.graph, None, &lm, &sources, &targets, threads, None)
                .unwrap();
            assert_eq!(a.dist, truth, "case {case_no} alt threads {threads}");
        }
    }
}

#[test]
fn disconnected_components_and_duplicate_sides() {
    // Two disjoint chains: 0->1->2 and 3->4->5. Sides repeat vertices and
    // straddle the components, so most of the matrix is unreachable.
    let g = Csr::from_edges(6, &[0, 1, 3, 4], &[1, 2, 4, 5]).unwrap();
    let rev = reverse_csr(&g);
    let ch = ContractionHierarchy::build(&g, None, 2);
    let lm = Landmarks::build(&g, &rev, None, 3, 1);
    let sources = [0u32, 3, 0, 5];
    let targets = [2u32, 5, 2, 0];
    let truth = truth_matrix(&g, None, &sources, &targets);
    assert!(truth.contains(&INF) && truth.contains(&2));
    for threads in [1, 4] {
        let m = ch_many_to_many(&ch, &sources, &targets, threads, None).unwrap();
        assert_eq!(m.dist, truth, "ch threads {threads}");
        let a = alt_many_to_many(&g, None, &lm, &sources, &targets, threads, None).unwrap();
        assert_eq!(a.dist, truth, "alt threads {threads}");
    }
}

#[test]
fn settled_counts_are_thread_independent() {
    // The settled totals feed EXPLAIN ANALYZE; they must not depend on the
    // worker count any more than the distances do.
    let mut rng = StdRng::seed_from_u64(0x5e771e);
    let case = random_case(&mut rng, 80, 400, 1);
    let n = case.graph.num_vertices();
    let wf = case.graph.permute_weights_int(&case.raw).unwrap();
    let rev = reverse_csr(&case.graph);
    let wb = rev.permute_weights_int(&case.raw).unwrap();
    let ch = ContractionHierarchy::build(&case.graph, Some(&wf), 1);
    let lm = Landmarks::build(&case.graph, &rev, Some((&wf, &wb)), 4, 1);
    let sources = random_side(&mut rng, n, 10);
    let targets = random_side(&mut rng, n, 10);
    let m1 = ch_many_to_many(&ch, &sources, &targets, 1, None).unwrap();
    let m4 = ch_many_to_many(&ch, &sources, &targets, 4, None).unwrap();
    assert_eq!(m1.settled, m4.settled);
    assert_eq!(m1.bucket_entries, m4.bucket_entries);
    let a1 = alt_many_to_many(&case.graph, Some(&wf), &lm, &sources, &targets, 1, None).unwrap();
    let a4 = alt_many_to_many(&case.graph, Some(&wf), &lm, &sources, &targets, 4, None).unwrap();
    assert_eq!(a1.settled, a4.settled);
}
