//! Property-style equivalence: contraction-hierarchy distances must equal
//! plain Dijkstra on random weighted digraphs — including disconnected
//! pairs and zero-weight edges — and builds at `threads = 1` and
//! `threads = 4` must produce identical hierarchies. Uses the workspace's
//! offline `rand` shim, so it runs by default in every CI configuration.

use gsql_accel::{ch_query, ContractionHierarchy};
use gsql_graph::{bfs, dijkstra_int, Csr};
use rand::prelude::*;

struct Case {
    graph: Csr,
    raw: Vec<i64>,
}

fn random_case(rng: &mut StdRng, max_n: u32, max_m: usize, min_weight: i64) -> Case {
    let n = rng.gen_range(2..max_n);
    let m = rng.gen_range(1..max_m);
    let src: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
    let dst: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
    let raw: Vec<i64> = (0..m).map(|_| rng.gen_range(min_weight..100)).collect();
    let graph = Csr::from_edges(n, &src, &dst).unwrap();
    Case { graph, raw }
}

/// Slot-order weights without the strict-positivity validation of
/// `permute_weights_int` (zero weights are legal at this layer).
fn slot_weights(graph: &Csr, raw: &[i64]) -> Vec<i64> {
    (0..graph.num_edges()).map(|slot| raw[graph.edge_row(slot) as usize]).collect()
}

#[test]
fn weighted_ch_equals_dijkstra_at_threads_1_and_4() {
    let mut rng = StdRng::seed_from_u64(0xc4);
    for case_no in 0..30 {
        let case = random_case(&mut rng, 50, 250, 1);
        let wf = case.graph.permute_weights_int(&case.raw).unwrap();
        let seq = ContractionHierarchy::build(&case.graph, Some(&wf), 1);
        let par = ContractionHierarchy::build(&case.graph, Some(&wf), 4);
        assert_eq!(seq.rank(), par.rank(), "case {case_no}: contraction order diverged");
        assert_eq!(seq.shortcuts(), par.shortcuts(), "case {case_no}: shortcut count diverged");
        let n = case.graph.num_vertices();
        for _ in 0..10 {
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            let truth = dijkstra_int(&case.graph, s, &[], &wf).dist[d as usize];
            let expected = if truth == u64::MAX { None } else { Some(truth) };
            for (label, ch) in [("threads=1", &seq), ("threads=4", &par)] {
                let r = ch_query(ch, s, d);
                assert_eq!(r.dist, expected, "case {case_no} {label} pair ({s}, {d})");
            }
        }
    }
}

#[test]
fn zero_weight_edges_stay_exact() {
    // Weights drawn from 0..100: zero-weight edges are legal at the accel
    // layer (the SQL layer validates strict positivity separately) and the
    // shortcut sums must still be exact.
    let mut rng = StdRng::seed_from_u64(0x0e0);
    for case_no in 0..20 {
        let case = random_case(&mut rng, 40, 200, 0);
        let wf = slot_weights(&case.graph, &case.raw);
        let ch = ContractionHierarchy::build(&case.graph, Some(&wf), 1);
        let n = case.graph.num_vertices();
        for s in 0..n {
            let truth = dijkstra_int(&case.graph, s, &[], &wf).dist;
            for d in 0..n {
                let r = ch_query(&ch, s, d);
                let expected =
                    if truth[d as usize] == u64::MAX { None } else { Some(truth[d as usize]) };
                assert_eq!(r.dist, expected, "case {case_no} pair ({s}, {d})");
            }
        }
    }
}

#[test]
fn unweighted_ch_equals_bfs_hops() {
    let mut rng = StdRng::seed_from_u64(0xcafe);
    for case_no in 0..30 {
        let case = random_case(&mut rng, 60, 200, 1);
        let ch1 = ContractionHierarchy::build(&case.graph, None, 1);
        let ch4 = ContractionHierarchy::build(&case.graph, None, 4);
        assert_eq!(ch1.rank(), ch4.rank(), "case {case_no}");
        let n = case.graph.num_vertices();
        for _ in 0..10 {
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            let hops = bfs(&case.graph, s, &[]).dist[d as usize];
            let expected = if hops == u32::MAX { None } else { Some(hops as u64) };
            for (label, ch) in [("threads=1", &ch1), ("threads=4", &ch4)] {
                let r = ch_query(ch, s, d);
                assert_eq!(r.dist, expected, "case {case_no} {label} pair ({s}, {d})");
            }
        }
    }
}

#[test]
fn disconnected_components_report_unreachable() {
    // Two disjoint chains: 0->1->2 and 3->4->5.
    let g = Csr::from_edges(6, &[0, 1, 3, 4], &[1, 2, 4, 5]).unwrap();
    let ch = ContractionHierarchy::build(&g, None, 2);
    assert_eq!(ch_query(&ch, 0, 2).dist, Some(2));
    assert_eq!(ch_query(&ch, 3, 5).dist, Some(2));
    for (s, d) in [(0, 3), (0, 5), (2, 4), (5, 0), (2, 0)] {
        assert_eq!(ch_query(&ch, s, d).dist, None, "pair ({s}, {d})");
    }
}

#[test]
fn dense_and_sparse_extremes() {
    // Complete-ish digraph (every query is one hop) and a bare chain.
    let n = 20u32;
    let mut src = Vec::new();
    let mut dst = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                src.push(a);
                dst.push(b);
            }
        }
    }
    let g = Csr::from_edges(n, &src, &dst).unwrap();
    let ch = ContractionHierarchy::build(&g, None, 4);
    for s in 0..n {
        for d in 0..n {
            let expected = if s == d { 0 } else { 1 };
            assert_eq!(ch_query(&ch, s, d).dist, Some(expected), "pair ({s}, {d})");
        }
    }
}
