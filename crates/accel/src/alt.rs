//! Goal-directed bidirectional A\* over landmark lower bounds.
//!
//! The symmetric formulation of Goldberg & Harrelson: with a forward
//! potential `πf(v) = lb(v, t)` and a backward potential `πb(v) = lb(s, v)`
//! the *average* potential pair `pf = (πf − πb)/2`, `pb = −pf` is consistent
//! for both searches simultaneously, which reduces the whole problem to
//! bidirectional Dijkstra over reduced edge costs — with the classic
//! termination rule `top_f + top_b ≥ μ`.
//!
//! To keep every quantity an exact integer the implementation works in
//! **doubled** space: distances are `2·d`, potentials enter keys as
//! `πf − πb` (never halved). Meeting-point values `μ = 2·d_f(v) + 2·d_b(v)`
//! have the potentials cancelled out, so the final answer is exactly
//! `μ / 2` — bit-identical to what plain Dijkstra computes over the same
//! weights.
//!
//! Two prunes fall out of the landmark bounds for free:
//!
//! * a vertex whose forward potential is [`INF`] provably cannot reach the
//!   destination and is never expanded (it cannot lie on any `s → t` path);
//! * symmetrically, a vertex the source provably cannot reach is never
//!   expanded backwards.

use crate::landmarks::Landmarks;
use crate::INF;
use gsql_graph::Csr;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The outcome of one ALT point-to-point search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AltResult {
    /// Exact shortest-path cost, `None` when `dest` is unreachable.
    pub dist: Option<u64>,
    /// Vertices settled across both directions — the pruning metric
    /// surfaced by `EXPLAIN ANALYZE` and the `alt_speedup` bench.
    pub settled: usize,
}

/// Memoized potential: `lb` is evaluated lazily (`O(k)` per vertex) and
/// cached for the duration of one query.
struct Potential<'a> {
    landmarks: &'a Landmarks,
    cache: Vec<u64>,
    known: Vec<bool>,
}

impl<'a> Potential<'a> {
    fn new(landmarks: &'a Landmarks, n: usize) -> Potential<'a> {
        Potential { landmarks, cache: vec![0; n], known: vec![false; n] }
    }

    fn get(&mut self, v: u32, eval: impl Fn(&Landmarks, u32) -> u64) -> u64 {
        let vi = v as usize;
        if !self.known[vi] {
            self.cache[vi] = eval(self.landmarks, v);
            self.known[vi] = true;
        }
        self.cache[vi]
    }
}

/// Bidirectional A\* from `source` to `dest` over `forward` and its
/// reversal `backward`, guided by `landmarks`.
///
/// `weights` holds the per-CSR-slot weight arrays of the two graphs
/// (`None` = unit weights), validated strictly positive — the same arrays
/// the landmark index was built from. The returned distance is exactly the
/// Dijkstra distance (hop count when unweighted).
pub fn alt_bidirectional(
    forward: &Csr,
    backward: &Csr,
    weights: Option<(&[i64], &[i64])>,
    landmarks: &Landmarks,
    source: u32,
    dest: u32,
) -> AltResult {
    let n = forward.num_vertices() as usize;
    debug_assert_eq!(backward.num_vertices() as usize, n);
    if source == dest {
        return AltResult { dist: Some(0), settled: 0 };
    }
    // π potentials, lazily evaluated: πf(v) = lb(v, t), πb(v) = lb(s, v).
    let mut pi_f = Potential::new(landmarks, n);
    let mut pi_b = Potential::new(landmarks, n);
    let eval_f = |lm: &Landmarks, v: u32| lm.lower_bound(v, dest);
    let eval_b = |lm: &Landmarks, v: u32| lm.lower_bound(source, v);
    if pi_f.get(source, eval_f) == INF {
        // A landmark proves the pair disconnected: zero search effort.
        return AltResult { dist: None, settled: 0 };
    }

    // Doubled distances (2·d); u64::MAX = unlabeled.
    let mut dist_f = vec![u64::MAX; n];
    let mut dist_b = vec![u64::MAX; n];
    let mut settled_f = vec![false; n];
    let mut settled_b = vec![false; n];
    dist_f[source as usize] = 0;
    dist_b[dest as usize] = 0;

    // Keys live in the doubled reduced space: key_f(v) = 2·d_f(v) + P(v),
    // key_b(v) = 2·d_b(v) − P(v) with P(v) = πf(v) − πb(v). Consistency of
    // the average potentials keeps popped keys non-decreasing; i128 rules
    // out any overflow concern.
    let mut heap_f: BinaryHeap<Reverse<(i128, u32)>> = BinaryHeap::new();
    let mut heap_b: BinaryHeap<Reverse<(i128, u32)>> = BinaryHeap::new();
    let p_source = pi_f.get(source, eval_f) as i128 - pi_b.get(source, eval_b) as i128;
    let p_dest = pi_f.get(dest, eval_f) as i128 - pi_b.get(dest, eval_b) as i128;
    heap_f.push(Reverse((p_source, source)));
    heap_b.push(Reverse((-p_dest, dest)));

    // Best doubled meeting cost: μ = min over meets v of 2·d_f(v) + 2·d_b(v).
    let mut mu = u64::MAX;
    let mut settled = 0usize;

    // When either heap empties, that search has settled every vertex it
    // can reach, so any optimal path already produced its meeting point
    // and μ is final — the loop ends.
    while let (Some(Reverse((tf, _))), Some(Reverse((tb, _)))) = (heap_f.peek(), heap_b.peek()) {
        let (top_f, top_b) = (*tf, *tb);
        // Classic bidirectional stop: no undiscovered path can beat μ once
        // the two frontiers' keys add up past it. (Stale keys only delay
        // the stop, never trigger it early.)
        if mu != u64::MAX && top_f + top_b >= mu as i128 {
            break;
        }
        let forward_turn = top_f <= top_b;
        let (graph, heap, my_dist, other_dist, my_settled) = if forward_turn {
            (forward, &mut heap_f, &mut dist_f, &dist_b, &mut settled_f)
        } else {
            (backward, &mut heap_b, &mut dist_b, &dist_f, &mut settled_b)
        };
        let Some(Reverse((_, u))) = heap.pop() else { break };
        let ui = u as usize;
        if my_settled[ui] {
            continue; // stale entry
        }
        my_settled[ui] = true;
        settled += 1;
        let du = my_dist[ui];
        for (slot, v) in graph.neighbors(u) {
            let vi = v as usize;
            if my_settled[vi] {
                continue;
            }
            let w = match weights {
                None => 1,
                Some((wf, wb)) => (if forward_turn { wf[slot] } else { wb[slot] }) as u64,
            };
            let nd = du + 2 * w;
            if nd >= my_dist[vi] {
                continue;
            }
            // Goal-direction prunes: a vertex that provably cannot reach
            // the destination (forward) or be reached from the source
            // (backward) lies on no s→t path.
            let pf_v = pi_f.get(v, eval_f);
            let pb_v = pi_b.get(v, eval_b);
            if (forward_turn && pf_v == INF) || (!forward_turn && pb_v == INF) {
                continue;
            }
            my_dist[vi] = nd;
            if other_dist[vi] != u64::MAX {
                mu = mu.min(nd + other_dist[vi]);
            }
            let p_v = pf_v as i128 - pb_v as i128;
            let key = nd as i128 + if forward_turn { p_v } else { -p_v };
            heap.push(Reverse((key, v)));
        }
    }

    let dist = if mu == u64::MAX {
        None
    } else {
        debug_assert_eq!(mu % 2, 0, "doubled distances are always even");
        Some(mu / 2)
    };
    AltResult { dist, settled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsql_graph::{dijkstra_int, reverse_csr};

    fn diamond() -> (Csr, Csr) {
        let g = Csr::from_edges(5, &[0, 0, 1, 2, 3], &[1, 2, 3, 3, 4]).unwrap();
        let r = reverse_csr(&g);
        (g, r)
    }

    fn weights(g: &Csr, r: &Csr, raw: &[i64]) -> (Vec<i64>, Vec<i64>) {
        (g.permute_weights_int(raw).unwrap(), r.permute_weights_int(raw).unwrap())
    }

    #[test]
    fn matches_dijkstra_on_diamond() {
        let (g, r) = diamond();
        let raw = [10i64, 1, 1, 1, 1];
        let (wf, wb) = weights(&g, &r, &raw);
        let lm = Landmarks::build(&g, &r, Some((&wf, &wb)), 3, 1);
        let truth = dijkstra_int(&g, 0, &[], &wf).dist;
        for d in 0..5u32 {
            let alt = alt_bidirectional(&g, &r, Some((&wf, &wb)), &lm, 0, d);
            let expected = truth[d as usize];
            if expected == u64::MAX {
                assert_eq!(alt.dist, None, "dest {d}");
            } else {
                assert_eq!(alt.dist, Some(expected), "dest {d}");
            }
        }
    }

    #[test]
    fn unweighted_matches_hops() {
        let (g, r) = diamond();
        let lm = Landmarks::build(&g, &r, None, 2, 1);
        assert_eq!(alt_bidirectional(&g, &r, None, &lm, 0, 4).dist, Some(3));
        assert_eq!(alt_bidirectional(&g, &r, None, &lm, 0, 0).dist, Some(0));
        let back = alt_bidirectional(&g, &r, None, &lm, 4, 0);
        assert_eq!(back.dist, None);
        // Landmark proof should make the unreachable probe free or cheap.
        assert!(back.settled <= 2, "settled {}", back.settled);
    }

    #[test]
    fn empty_landmarks_degenerate_to_bidirectional_dijkstra() {
        let (g, r) = diamond();
        let lm = Landmarks::build(&g, &r, None, 0, 1);
        assert!(lm.is_empty());
        assert_eq!(alt_bidirectional(&g, &r, None, &lm, 0, 3).dist, Some(2));
        assert_eq!(alt_bidirectional(&g, &r, None, &lm, 1, 2).dist, None);
    }

    #[test]
    fn random_graphs_match_dijkstra_exactly() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..40 {
            let n: u32 = rng.gen_range(2..60);
            let m: usize = rng.gen_range(1..300);
            let src: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
            let dst: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
            let raw: Vec<i64> = (0..m).map(|_| rng.gen_range(1..50)).collect();
            let g = Csr::from_edges(n, &src, &dst).unwrap();
            let r = reverse_csr(&g);
            let (wf, wb) = weights(&g, &r, &raw);
            let k = rng.gen_range(1..6);
            let lm = Landmarks::build(&g, &r, Some((&wf, &wb)), k, 1);
            for _ in 0..12 {
                let s = rng.gen_range(0..n);
                let d = rng.gen_range(0..n);
                let truth = dijkstra_int(&g, s, &[], &wf).dist[d as usize];
                let alt = alt_bidirectional(&g, &r, Some((&wf, &wb)), &lm, s, d);
                let expected = if truth == u64::MAX { None } else { Some(truth) };
                assert_eq!(alt.dist, expected, "case {case} pair ({s}, {d}) k {k}");
            }
        }
    }

    #[test]
    fn settled_counts_shrink_on_a_long_chain() {
        // A 400-vertex chain: Dijkstra from one end settles everything up
        // to the target; ALT with landmarks near both ends should settle
        // far fewer for a nearby target.
        let n = 400u32;
        let src: Vec<u32> = (0..n - 1).collect();
        let dst: Vec<u32> = (1..n).collect();
        let g = Csr::from_edges(n, &src, &dst).unwrap();
        let r = reverse_csr(&g);
        let lm = Landmarks::build(&g, &r, None, 4, 2);
        let alt = alt_bidirectional(&g, &r, None, &lm, 0, 10);
        assert_eq!(alt.dist, Some(10));
        assert!(alt.settled <= 30, "goal direction failed to prune: {}", alt.settled);
    }
}
