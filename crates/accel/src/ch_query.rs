//! Bidirectional upward Dijkstra over a contraction hierarchy, with
//! stall-on-demand.
//!
//! The forward search runs from the source over the upward graph `G↑`, the
//! backward search from the destination over the reversed downward graph
//! `G↓`; both only ever climb in contraction rank. Because every shortest
//! path of the original graph has a cost-equal *up-then-down* shape over
//! the hierarchy, the minimum meeting value `μ = min_v d_f(v) + d_b(v)` is
//! **exactly** the Dijkstra distance — shortcut weights are sums of
//! original integer weights, so no rounding enters anywhere and the result
//! is bit-identical to [`gsql_graph::dijkstra_int`] over the same weights.
//!
//! Two classic prunes keep the searched cone tiny:
//!
//! * a direction stops expanding once its cheapest queue key is at least
//!   `μ` (no undiscovered meeting can improve on it);
//! * **stall-on-demand**: a settled vertex `u` whose label can be strictly
//!   beaten via an *incoming* edge from a higher-ranked, already-labelled
//!   vertex is not expanded — the path through `u` at this label cannot be
//!   part of a shortest up-down path.

use crate::ch::ContractionHierarchy;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The outcome of one CH point-to-point query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChResult {
    /// Exact shortest-path cost, `None` when `dest` is unreachable.
    pub dist: Option<u64>,
    /// Vertices settled across both directions — the effort metric
    /// surfaced by `EXPLAIN ANALYZE` and the `accel_speedup` bench.
    pub settled: usize,
    /// Settled vertices pruned by stall-on-demand (counted inside
    /// `settled`) — how much work the prune saved, surfaced in traces.
    pub stalled: usize,
}

/// Exact shortest-path cost from `source` to `dest` over the hierarchy.
pub fn ch_query(ch: &ContractionHierarchy, source: u32, dest: u32) -> ChResult {
    let n = ch.num_vertices() as usize;
    if source as usize >= n || dest as usize >= n {
        return ChResult { dist: None, settled: 0, stalled: 0 };
    }
    if source == dest {
        return ChResult { dist: Some(0), settled: 0, stalled: 0 };
    }
    let mut dist_f = vec![u64::MAX; n];
    let mut dist_b = vec![u64::MAX; n];
    let mut done_f = vec![false; n];
    let mut done_b = vec![false; n];
    dist_f[source as usize] = 0;
    dist_b[dest as usize] = 0;
    let mut heap_f: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut heap_b: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    heap_f.push(Reverse((0, source)));
    heap_b.push(Reverse((0, dest)));

    let mut mu = u64::MAX;
    let mut settled = 0usize;
    let mut stalled = 0usize;
    loop {
        // A direction is live while it still holds keys below μ.
        let live = |heap: &BinaryHeap<Reverse<(u64, u32)>>| {
            heap.peek().is_some_and(|Reverse((d, _))| *d < mu)
        };
        let forward_turn = match (live(&heap_f), live(&heap_b)) {
            (false, false) => break,
            (true, false) => true,
            (false, true) => false,
            // Both live: expand the cheaper frontier (forward on ties).
            (true, true) => {
                let Reverse((df, _)) = heap_f.peek().expect("live");
                let Reverse((db, _)) = heap_b.peek().expect("live");
                df <= db
            }
        };
        let (graph, stall_graph, heap, my_dist, other_dist, my_done) = if forward_turn {
            (&ch.fwd_up, &ch.bwd_up, &mut heap_f, &mut dist_f, &dist_b, &mut done_f)
        } else {
            (&ch.bwd_up, &ch.fwd_up, &mut heap_b, &mut dist_b, &dist_f, &mut done_b)
        };
        let Some(Reverse((du, u))) = heap.pop() else { break };
        let ui = u as usize;
        if my_done[ui] {
            continue; // stale entry
        }
        my_done[ui] = true;
        settled += 1;
        // Any labelled meeting point yields a real up-down path; tentative
        // labels on the other side only ever shrink, so μ stays an upper
        // bound that ends exact.
        if other_dist[ui] != u64::MAX {
            mu = mu.min(du.saturating_add(other_dist[ui]));
        }
        // Stall-on-demand: an incoming edge from a labelled higher-ranked
        // vertex that strictly beats `du` proves this label useless.
        if stall_graph.neighbors(u).any(|(w, wt)| {
            let dw = my_dist[w as usize];
            dw != u64::MAX && dw.saturating_add(wt) < du
        }) {
            stalled += 1;
            continue;
        }
        for (v, wt) in graph.neighbors(u) {
            let vi = v as usize;
            let nd = du.saturating_add(wt);
            if nd < my_dist[vi] {
                my_dist[vi] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }

    let dist = if mu == u64::MAX { None } else { Some(mu) };
    ChResult { dist, settled, stalled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ch::ContractionHierarchy;
    use gsql_graph::{dijkstra_int, Csr};

    #[test]
    fn long_chain_settles_few_vertices() {
        // A 400-vertex chain: plain Dijkstra from one end settles every
        // vertex up to the target; the hierarchy settles a logarithmic
        // cone from both ends.
        let n = 400u32;
        let src: Vec<u32> = (0..n - 1).collect();
        let dst: Vec<u32> = (1..n).collect();
        let g = Csr::from_edges(n, &src, &dst).unwrap();
        let ch = ContractionHierarchy::build(&g, None, 2);
        let r = ch_query(&ch, 0, 399);
        assert_eq!(r.dist, Some(399));
        assert!(r.settled <= 64, "hierarchy failed to prune: {}", r.settled);
        assert_eq!(ch_query(&ch, 399, 0).dist, None);
    }

    #[test]
    fn grid_matches_dijkstra_everywhere() {
        // A 12x12 bidirectional grid with deterministic pseudo-weights.
        let side = 12u32;
        let n = side * side;
        let mut src = Vec::new();
        let mut dst = Vec::new();
        let mut raw = Vec::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    for (a, b) in [(v, v + 1), (v + 1, v)] {
                        src.push(a);
                        dst.push(b);
                        raw.push((next() % 9 + 1) as i64);
                    }
                }
                if r + 1 < side {
                    for (a, b) in [(v, v + side), (v + side, v)] {
                        src.push(a);
                        dst.push(b);
                        raw.push((next() % 9 + 1) as i64);
                    }
                }
            }
        }
        let g = Csr::from_edges(n, &src, &dst).unwrap();
        let wf = g.permute_weights_int(&raw).unwrap();
        let ch = ContractionHierarchy::build(&g, Some(&wf), 4);
        for s in [0u32, 17, 77, n - 1] {
            let truth = dijkstra_int(&g, s, &[], &wf).dist;
            for d in 0..n {
                let r = ch_query(&ch, s, d);
                assert_eq!(r.dist, Some(truth[d as usize]), "pair ({s}, {d})");
            }
        }
    }
}
