//! Contraction-hierarchy preprocessing: node ordering and shortcut
//! insertion (Geisberger et al., WEA'08).
//!
//! A contraction hierarchy removes vertices one by one in a heuristic
//! *importance* order; whenever removing `v` would break a shortest path
//! `u → v → w`, a **shortcut** edge `u → w` of weight `d(u,v) + d(v,w)` is
//! inserted — unless a bounded **witness search** proves an equally cheap
//! detour avoiding `v` already exists. The surviving edges (originals plus
//! shortcuts), each pointing from a lower-ranked to a higher-ranked
//! endpoint, form two search graphs:
//!
//! * the **upward graph** `G↑` — forward edges into higher ranks, searched
//!   from the source;
//! * the **downward graph** `G↓` (stored reversed) — original edges out of
//!   higher ranks, searched backward from the destination.
//!
//! Every shortest path in the original graph is cost-equal to an
//! *up-then-down* path over the hierarchy, so the bidirectional upward
//! Dijkstra in [`crate::ch_query`] is exact — shortcut insertion is purely
//! conservative (a failed witness search adds a shortcut, never drops one),
//! which is why the witness limits trade preprocessing quality for build
//! time without ever affecting correctness.
//!
//! Ordering uses the classic **edge difference** (shortcuts added minus
//! edges removed) plus a **deleted neighbours** term that spreads the
//! contraction evenly. The contraction itself proceeds in **independent-set
//! rounds** (the standard parallel-CH scheme): every round selects the
//! vertices that are strict local minima of a deterministic key —
//! `(priority, hash(v), v)`, the hash term breaking uniform-priority
//! plateaus so rounds stay wide — over their uncontracted overlay
//! neighbours. No two selected vertices share an edge, so their witness
//! searches and shortcut sets are computed concurrently against the
//! round-start overlay and stay valid when applied: a witness path through
//! a co-selected vertex survives its contraction via that vertex's own
//! shortcuts. Selection, shortcut enumeration, and the post-round priority
//! refresh of touched neighbours all fan out over the `gsql-parallel`
//! pool, while shortcut application, rank assignment (ascending vertex id
//! within a round) and detachment run sequentially — every parallel piece
//! returns results in input order, so the built hierarchy is identical at
//! every thread count.

use crate::INF;
use gsql_graph::Csr;
use gsql_parallel::Pool;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Settled-vertex budget of one witness search. Larger budgets find more
/// witnesses (fewer shortcuts, better queries) at higher preprocessing
/// cost; exceeding the budget merely inserts a redundant shortcut.
const WITNESS_SETTLED_LIMIT: usize = 64;

/// One upward search graph in CSR form: for every vertex, its edges toward
/// higher-ranked vertices.
#[derive(Debug, Clone, Default)]
pub(crate) struct UpGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<u64>,
}

impl UpGraph {
    /// Flatten per-vertex adjacency (already sorted by target) into CSR.
    fn from_adj(adj: &[Vec<(u32, u64)>]) -> UpGraph {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for list in adj {
            total += list.len();
            offsets.push(total);
        }
        let mut targets = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        for list in adj {
            for &(t, w) in list {
                targets.push(t);
                weights.push(w);
            }
        }
        UpGraph { offsets, targets, weights }
    }

    /// `(target, weight)` pairs of `v`'s upward edges.
    #[inline]
    pub(crate) fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let range = self.offsets[v as usize]..self.offsets[v as usize + 1];
        self.targets[range.clone()].iter().copied().zip(self.weights[range].iter().copied())
    }

    fn num_edges(&self) -> usize {
        self.targets.len()
    }
}

/// A built contraction hierarchy: the contraction order plus the upward and
/// (reversed) downward search graphs consumed by [`crate::ch_query`].
#[derive(Debug, Clone)]
pub struct ContractionHierarchy {
    /// `rank[v]` = position of `v` in the contraction order (0 = first
    /// contracted = least important).
    rank: Vec<u32>,
    /// Forward edges into higher ranks (the source-side search graph).
    pub(crate) fwd_up: UpGraph,
    /// Reverse edges into higher ranks: `bwd_up[v]` holds `(u, w)` for every
    /// original-direction edge `u → v` with `rank[u] > rank[v]` (the
    /// destination-side search graph).
    pub(crate) bwd_up: UpGraph,
    /// Number of shortcut edges inserted during preprocessing.
    shortcuts: usize,
}

impl ContractionHierarchy {
    /// Build a hierarchy over `forward` with per-CSR-slot `weights`
    /// (`None` = unit weights), exactly as [`Csr::permute_weights_int`]
    /// produces them — non-negative; the SQL layer additionally validates
    /// strict positivity, but zero weights are handled exactly.
    ///
    /// `threads` sizes the worker pool for the order-independent pieces
    /// (initial priorities, final CSR assembly); the result is identical
    /// for every thread count.
    pub fn build(forward: &Csr, weights: Option<&[i64]>, threads: usize) -> ContractionHierarchy {
        let n = forward.num_vertices() as usize;
        // Overlay adjacency, deduplicating parallel edges to their minimum
        // weight and dropping self-loops (neither can shorten any path).
        let mut out_adj: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
        let mut in_adj: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
        for u in 0..n as u32 {
            for (slot, v) in forward.neighbors(u) {
                if v == u {
                    continue;
                }
                let w = weights.map_or(1, |ws| {
                    debug_assert!(ws[slot] >= 0, "negative weight reached CH build");
                    ws[slot] as u64
                });
                let e = out_adj[u as usize].entry(v).or_insert(u64::MAX);
                *e = (*e).min(w);
                let e = in_adj[v as usize].entry(u).or_insert(u64::MAX);
                *e = (*e).min(w);
            }
        }

        let mut deleted_neighbors: Vec<u32> = vec![0; n];
        // Initial priorities: one simulated contraction per vertex, an
        // independent computation fanned out over the pool (per-worker
        // witness scratch, results in input order).
        let pool = Pool::new(threads);
        let mut prios: Vec<i64> = pool.map_with(
            n,
            || WitnessSearch::new(n),
            |wit, v| priority(v as u32, &out_adj, &in_adj, &deleted_neighbors, wit),
        );

        let mut rank: Vec<u32> = vec![u32::MAX; n];
        let mut fwd_up_adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        let mut bwd_up_adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        let mut shortcuts = 0usize;
        let mut next_rank = 0u32;
        let mut remaining: Vec<u32> = (0..n as u32).collect();
        let mut in_round: Vec<bool> = vec![false; n];
        while !remaining.is_empty() {
            // Round key: priority first, then a hash so uniform-priority
            // regions (chains, grids) still select wide independent sets,
            // then the id to make every key distinct (which also makes the
            // key-minimal vertex a guaranteed pick — termination).
            let key = |v: u32| (prios[v as usize], splitmix64(v as u64), v);
            // A vertex joins the round iff it beats every uncontracted
            // overlay neighbour; adjacent vertices can never both win, so
            // the selected set is independent.
            let picked: Vec<bool> = pool.map(remaining.len(), |i| {
                let v = remaining[i];
                let kv = key(v);
                out_adj[v as usize].keys().chain(in_adj[v as usize].keys()).all(|&u| key(u) > kv)
            });
            let selected: Vec<u32> = remaining
                .iter()
                .zip(&picked)
                .filter_map(|(&v, &p)| if p { Some(v) } else { None })
                .collect();
            debug_assert!(!selected.is_empty());

            // Witness searches + shortcut sets against the round-start
            // overlay, one independent task per selected vertex. Witness
            // paths must avoid the *entire* selected set, not just the
            // vertex being contracted: two co-selected vertices could
            // otherwise each skip a shortcut on the strength of a witness
            // running through the other (which this round also removes).
            // Avoiding the whole set means a found witness survives the
            // round verbatim — its vertices stay, and edges between
            // surviving vertices are never removed — so skipping stays
            // safe; extra shortcuts always are.
            for &v in &selected {
                in_round[v as usize] = true;
            }
            let added_per: Vec<Vec<(u32, u32, u64)>> = pool.map_with(
                selected.len(),
                || WitnessSearch::new(n),
                |wit, i| {
                    let mut added = Vec::new();
                    shortcuts_of(
                        selected[i],
                        &out_adj,
                        &in_adj,
                        wit,
                        Some(&in_round),
                        |u, w, wt| {
                            added.push((u, w, wt));
                        },
                    );
                    added
                },
            );
            for &v in &selected {
                in_round[v as usize] = false;
            }

            // Apply sequentially in ascending vertex id (the order
            // `selected` is already in): shortcut bookkeeping and rank
            // assignment are deterministic regardless of thread count.
            let mut touched: Vec<u32> = Vec::new();
            for (added, &v) in added_per.iter().zip(&selected) {
                for &(u, w, wt) in added {
                    let e = out_adj[u as usize].entry(w).or_insert(u64::MAX);
                    if *e == u64::MAX {
                        shortcuts += 1;
                    }
                    *e = (*e).min(wt);
                    let e = in_adj[w as usize].entry(u).or_insert(u64::MAX);
                    *e = (*e).min(wt);
                }

                // Detach v. Its remaining neighbours are exactly the
                // not-yet-contracted ones, so the recorded edges all point
                // upward in rank.
                let mut outs: Vec<(u32, u64)> =
                    out_adj[v as usize].iter().map(|(&t, &w)| (t, w)).collect();
                outs.sort_unstable();
                let mut ins: Vec<(u32, u64)> =
                    in_adj[v as usize].iter().map(|(&t, &w)| (t, w)).collect();
                ins.sort_unstable();
                for &(w, _) in &outs {
                    in_adj[w as usize].remove(&v);
                    deleted_neighbors[w as usize] += 1;
                    touched.push(w);
                }
                for &(u, _) in &ins {
                    out_adj[u as usize].remove(&v);
                    deleted_neighbors[u as usize] += 1;
                    touched.push(u);
                }
                fwd_up_adj[v as usize] = outs;
                bwd_up_adj[v as usize] = ins;
                rank[v as usize] = next_rank;
                next_rank += 1;
            }

            // Refresh the priorities the round invalidated — the former
            // neighbours of contracted vertices — in parallel (sorted +
            // dedup'd, so the refresh set and result order are
            // deterministic).
            touched.sort_unstable();
            touched.dedup();
            let fresh: Vec<i64> = pool.map_with(
                touched.len(),
                || WitnessSearch::new(n),
                |wit, i| priority(touched[i], &out_adj, &in_adj, &deleted_neighbors, wit),
            );
            for (&v, f) in touched.iter().zip(fresh) {
                prios[v as usize] = f;
            }
            remaining.retain(|&v| rank[v as usize] == u32::MAX);
        }
        debug_assert_eq!(next_rank as usize, n);

        // The two search-graph CSRs are independent assemblies.
        let mut graphs =
            pool.map(2, |i| UpGraph::from_adj(if i == 0 { &fwd_up_adj } else { &bwd_up_adj }));
        let bwd_up = graphs.pop().expect("two graphs");
        let fwd_up = graphs.pop().expect("two graphs");
        ContractionHierarchy { rank, fwd_up, bwd_up, shortcuts }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.rank.len() as u32
    }

    /// Number of shortcut edges the preprocessing inserted.
    pub fn shortcuts(&self) -> usize {
        self.shortcuts
    }

    /// The contraction order: `rank()[v]` is `v`'s position (0 = contracted
    /// first). Exposed for the equivalence tests' thread-independence
    /// checks.
    pub fn rank(&self) -> &[u32] {
        &self.rank
    }

    /// Approximate heap size of the hierarchy in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rank.len() * std::mem::size_of::<u32>()
            + (self.fwd_up.num_edges() + self.bwd_up.num_edges())
                * (std::mem::size_of::<u32>() + std::mem::size_of::<u64>())
            + (self.fwd_up.offsets.len() + self.bwd_up.offsets.len()) * std::mem::size_of::<usize>()
    }

    /// Clone the hierarchy into its raw parts for serialization.
    pub fn to_parts(&self) -> ChParts {
        let up = |g: &UpGraph| UpGraphParts {
            offsets: g.offsets.clone(),
            targets: g.targets.clone(),
            weights: g.weights.clone(),
        };
        ChParts {
            rank: self.rank.clone(),
            fwd: up(&self.fwd_up),
            bwd: up(&self.bwd_up),
            shortcuts: self.shortcuts as u64,
        }
    }

    /// Reassemble a hierarchy from serialized parts, validating the CSR
    /// invariants ([`ContractionHierarchy::to_parts`] round-trips exactly).
    /// The error string names the violated invariant.
    pub fn from_parts(parts: ChParts) -> Result<ContractionHierarchy, String> {
        let n = parts.rank.len();
        let check = |side: &str, p: &UpGraphParts| -> Result<(), String> {
            if p.offsets.len() != n + 1 {
                return Err(format!(
                    "{side} upward graph has {} offsets for {n} vertices",
                    p.offsets.len()
                ));
            }
            if p.offsets.first() != Some(&0) || p.offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{side} upward graph offsets are not monotone from 0"));
            }
            let m = *p.offsets.last().unwrap_or(&0);
            if p.targets.len() != m || p.weights.len() != m {
                return Err(format!(
                    "{side} upward graph declares {m} edges but has {} targets / {} weights",
                    p.targets.len(),
                    p.weights.len()
                ));
            }
            if p.targets.iter().any(|&t| t as usize >= n) {
                return Err(format!("{side} upward graph target out of range"));
            }
            Ok(())
        };
        check("forward", &parts.fwd)?;
        check("backward", &parts.bwd)?;
        let up = |p: UpGraphParts| UpGraph {
            offsets: p.offsets,
            targets: p.targets,
            weights: p.weights,
        };
        Ok(ContractionHierarchy {
            rank: parts.rank,
            fwd_up: up(parts.fwd),
            bwd_up: up(parts.bwd),
            shortcuts: parts.shortcuts as usize,
        })
    }
}

/// Raw contents of one upward search graph (see [`ChParts`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpGraphParts {
    /// CSR offsets, length `n + 1`.
    pub offsets: Vec<usize>,
    /// Higher-ranked neighbor of each slot.
    pub targets: Vec<u32>,
    /// Edge weight of each slot.
    pub weights: Vec<u64>,
}

/// The raw parts of a [`ContractionHierarchy`], used by the persistence
/// layer to serialize a built hierarchy and reassemble it on warm start
/// without re-running preprocessing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChParts {
    /// Contraction order (`rank[v]` = position of `v`).
    pub rank: Vec<u32>,
    /// The source-side (forward upward) search graph.
    pub fwd: UpGraphParts,
    /// The destination-side (backward upward) search graph.
    pub bwd: UpGraphParts,
    /// Number of shortcuts inserted at build time (reporting only).
    pub shortcuts: u64,
}

/// SplitMix64 finalizer: the deterministic per-vertex hash that spreads
/// the independent-set round key across uniform-priority regions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The priority of `v`: twice the edge difference (shortcuts a contraction
/// would insert minus edges it removes) plus the deleted-neighbours count.
/// Smaller contracts earlier; ties break by hash then vertex id through
/// the round key.
fn priority(
    v: u32,
    out_adj: &[HashMap<u32, u64>],
    in_adj: &[HashMap<u32, u64>],
    deleted_neighbors: &[u32],
    witness: &mut WitnessSearch,
) -> i64 {
    let mut needed = 0i64;
    shortcuts_of(v, out_adj, in_adj, witness, None, |_, _, _| needed += 1);
    let removed = (out_adj[v as usize].len() + in_adj[v as usize].len()) as i64;
    2 * (needed - removed) + deleted_neighbors[v as usize] as i64
}

/// Enumerate the shortcuts contracting `v` requires: for every uncontracted
/// in-neighbour `u` and out-neighbour `w` (`u ≠ w`), emit `(u, w, d(u,v) +
/// d(v,w))` unless a bounded witness search finds a path `u ⇝ w` avoiding
/// `v` that is at least as cheap. Deterministic: neighbours are visited in
/// sorted order and the witness search breaks heap ties by vertex id.
fn shortcuts_of(
    v: u32,
    out_adj: &[HashMap<u32, u64>],
    in_adj: &[HashMap<u32, u64>],
    witness: &mut WitnessSearch,
    banned: Option<&[bool]>,
    mut emit: impl FnMut(u32, u32, u64),
) {
    let vi = v as usize;
    if out_adj[vi].is_empty() || in_adj[vi].is_empty() {
        return;
    }
    let mut outs: Vec<(u32, u64)> = out_adj[vi].iter().map(|(&t, &w)| (t, w)).collect();
    outs.sort_unstable();
    let mut ins: Vec<(u32, u64)> = in_adj[vi].iter().map(|(&t, &w)| (t, w)).collect();
    ins.sort_unstable();
    let max_out = outs.iter().map(|&(_, w)| w).max().unwrap_or(0);
    for &(u, w_uv) in &ins {
        // One witness search per in-neighbour covers all out-neighbours:
        // labels beyond `w_uv + max_out` can never beat any shortcut.
        witness.run(out_adj, u, v, banned, w_uv.saturating_add(max_out));
        for &(w, w_vw) in &outs {
            if w == u {
                continue;
            }
            let via = w_uv.saturating_add(w_vw);
            if witness.dist(w) <= via {
                continue; // a witness path avoids v at no extra cost
            }
            emit(u, w, via);
        }
    }
}

/// Reusable bounded Dijkstra for witness searches: epoch-stamped labels (no
/// per-run clearing) over the overlay adjacency, excluding one vertex,
/// stopping at [`WITNESS_SETTLED_LIMIT`] settled vertices or once the
/// frontier passes the weight limit.
struct WitnessSearch {
    dist: Vec<u64>,
    epoch: Vec<u32>,
    current: u32,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl WitnessSearch {
    fn new(n: usize) -> WitnessSearch {
        WitnessSearch { dist: vec![0; n], epoch: vec![0; n], current: 0, heap: BinaryHeap::new() }
    }

    /// Label of `v` from the last [`WitnessSearch::run`], [`INF`] when `v`
    /// was not reached within the limits.
    fn dist(&self, v: u32) -> u64 {
        if self.epoch[v as usize] == self.current {
            self.dist[v as usize]
        } else {
            INF
        }
    }

    fn label(&mut self, v: u32, d: u64) -> bool {
        let vi = v as usize;
        if self.epoch[vi] == self.current && self.dist[vi] <= d {
            return false;
        }
        self.epoch[vi] = self.current;
        self.dist[vi] = d;
        true
    }

    /// Bounded Dijkstra from `source` avoiding `excluded` and, when
    /// `banned` is given, every flagged vertex — the whole independent set
    /// of the current round, so witness paths only use vertices (and
    /// therefore edges) that survive the round intact.
    fn run(
        &mut self,
        out_adj: &[HashMap<u32, u64>],
        source: u32,
        excluded: u32,
        banned: Option<&[bool]>,
        limit: u64,
    ) {
        self.current = self.current.wrapping_add(1);
        self.heap.clear();
        self.label(source, 0);
        self.heap.push(Reverse((0, source)));
        let mut settled = 0usize;
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist(u) {
                continue; // stale entry
            }
            if d > limit {
                break; // no label past here can beat any shortcut
            }
            settled += 1;
            if settled > WITNESS_SETTLED_LIMIT {
                break;
            }
            for (&t, &w) in &out_adj[u as usize] {
                if t == excluded || banned.is_some_and(|b| b[t as usize]) {
                    continue;
                }
                let nd = d.saturating_add(w);
                if nd <= limit && self.label(t, nd) {
                    self.heap.push(Reverse((nd, t)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ch_query::ch_query;
    use gsql_graph::{dijkstra_int, reverse_csr};

    /// 0->1, 0->2, 1->3, 2->3, 3->4 — the workspace's diamond.
    fn diamond() -> Csr {
        Csr::from_edges(5, &[0, 0, 1, 2, 3], &[1, 2, 3, 3, 4]).unwrap()
    }

    #[test]
    fn diamond_distances_match_dijkstra() {
        let g = diamond();
        let raw = [10i64, 1, 1, 1, 1];
        let wf = g.permute_weights_int(&raw).unwrap();
        let ch = ContractionHierarchy::build(&g, Some(&wf), 1);
        for s in 0..5u32 {
            let truth = dijkstra_int(&g, s, &[], &wf).dist;
            for d in 0..5u32 {
                let r = ch_query(&ch, s, d);
                let expected =
                    if truth[d as usize] == u64::MAX { None } else { Some(truth[d as usize]) };
                assert_eq!(r.dist, expected, "pair ({s}, {d})");
            }
        }
    }

    #[test]
    fn unweighted_matches_hops_and_unreachable() {
        let g = diamond();
        let ch = ContractionHierarchy::build(&g, None, 2);
        assert_eq!(ch_query(&ch, 0, 4).dist, Some(3));
        assert_eq!(ch_query(&ch, 0, 0).dist, Some(0));
        assert_eq!(ch_query(&ch, 4, 0).dist, None);
    }

    #[test]
    fn build_is_thread_independent() {
        let g = diamond();
        let base = ContractionHierarchy::build(&g, None, 1);
        for threads in [2, 4, 8] {
            let par = ContractionHierarchy::build(&g, None, threads);
            assert_eq!(par.rank(), base.rank(), "threads {threads}");
            assert_eq!(par.shortcuts(), base.shortcuts(), "threads {threads}");
        }
    }

    #[test]
    fn parallel_edges_and_self_loops_are_normalized() {
        // 0->1 twice (weights 7 and 3), a self-loop on 0, 1->2.
        let g = Csr::from_edges(3, &[0, 0, 0, 1], &[1, 1, 0, 2]).unwrap();
        let raw = [7i64, 3, 5, 2];
        let wf = g.permute_weights_int(&raw).unwrap();
        let ch = ContractionHierarchy::build(&g, Some(&wf), 1);
        assert_eq!(ch_query(&ch, 0, 2).dist, Some(5)); // 3 + 2, loop ignored
    }

    #[test]
    fn zero_weight_edges_are_exact() {
        // 0 -(0)-> 1 -(0)-> 2 -(4)-> 3, plus 0 -(5)-> 3 direct.
        let g = Csr::from_edges(4, &[0, 1, 2, 0], &[1, 2, 3, 3]).unwrap();
        let slot_weights: Vec<i64> =
            (0..g.num_edges()).map(|slot| [0i64, 0, 4, 5][g.edge_row(slot) as usize]).collect();
        let ch = ContractionHierarchy::build(&g, Some(&slot_weights), 1);
        assert_eq!(ch_query(&ch, 0, 3).dist, Some(4));
        assert_eq!(ch_query(&ch, 0, 2).dist, Some(0));
        assert_eq!(ch_query(&ch, 3, 0).dist, None);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[], &[]).unwrap();
        let _r = reverse_csr(&g);
        let ch = ContractionHierarchy::build(&g, None, 4);
        assert_eq!(ch.num_vertices(), 0);
        assert_eq!(ch.shortcuts(), 0);
    }
}
