//! Batched many-to-many acceleration: bucket-based CH (Knopp et al.,
//! ALENEX'07) and multi-target ALT.
//!
//! # Bucket-based many-to-many CH
//!
//! A point-to-point CH query runs one upward search from each endpoint and
//! takes the best meeting vertex. For an `S × T` matrix the backward halves
//! only depend on the target, so they can be shared across every source:
//!
//! 1. **Bucket phase** — one backward upward search per distinct target
//!    `t`, depositing `(t, d_b(v, t))` into a per-vertex *bucket* at every
//!    (unstalled) settled vertex `v`;
//! 2. **Scan phase** — one forward upward search per distinct source `s`;
//!    at every settled vertex `v` the bucket entries are scanned and
//!    `best[t] = min(best[t], d_f(s, v) + d_b(v, t))` updated.
//!
//! Every shortest path is cost-equal to an up-then-down path over the
//! hierarchy, so the minimum over meeting vertices is **exact** — the whole
//! matrix costs `S + T` upward searches instead of `S` full Dijkstras, and
//! each entry is bit-identical to plain Dijkstra over the same weights.
//! Stall-on-demand applies unchanged: a label that a higher-ranked
//! neighbour strictly beats lies on no shortest up-down path, so stalled
//! vertices neither deposit nor scan buckets.
//!
//! # Multi-target ALT
//!
//! The fallback tier for landmark indexes runs **one** goal-directed
//! forward search per source. The potential is the per-target minimum of
//! the landmark lower bounds, aggregated per landmark over the target set
//! (`min_t lb(v, t) ≥ max_i max(min_t d(Lᵢ,t) − d(Lᵢ,v), d(v,Lᵢ) −
//! max_t d(t,Lᵢ))`), which is consistent — the minimum (and maximum) of
//! consistent potentials is consistent — so every settled vertex carries
//! its exact Dijkstra distance and each target is exact the moment it
//! settles. A vertex whose aggregated bound is [`INF`] provably reaches no
//! target at all and is pruned. Unlike the bidirectional point-to-point
//! formulation no doubling is needed: a unidirectional consistent A\*
//! reads distances straight off the labels.
//!
//! Both drivers fan out over the `gsql-parallel` pool — bucket
//! construction over targets, forward scans and multi-target searches over
//! sources — with per-worker scratch and results merged in input order, so
//! the matrix is bit-identical at every thread count. The optional
//! `deadline` is polled between per-vertex searches (the "bucket phases"),
//! mirroring `BatchComputer`; an expired deadline returns `None`.

use crate::ch::{ContractionHierarchy, UpGraph};
use crate::landmarks::Landmarks;
use crate::INF;
use gsql_graph::Csr;
use gsql_parallel::Pool;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// One many-to-many distance matrix.
#[derive(Debug, Clone)]
pub struct M2mResult {
    /// Row-major `|sources| × |targets|` exact distances; [`INF`] when the
    /// pair is disconnected.
    pub dist: Vec<u64>,
    /// Vertices settled across every search of both phases.
    pub settled: usize,
    /// Total `(target, dist)` bucket entries deposited (CH only; 0 for
    /// ALT) — the sharing metric surfaced by `EXPLAIN ANALYZE`.
    pub bucket_entries: usize,
    /// Settled vertices pruned by stall-on-demand across both phases
    /// (counted inside `settled`; 0 for ALT) — surfaced in traces.
    pub stalled: usize,
}

impl M2mResult {
    /// The matrix entry for `(source index, target index)`.
    #[inline]
    pub fn dist(&self, si: usize, ti: usize, num_targets: usize) -> u64 {
        self.dist[si * num_targets + ti]
    }
}

/// Reusable scratch for one upward search: touched-list clearing keeps a
/// run `O(cone size)` instead of `O(n)`.
struct UpwardScratch {
    dist: Vec<u64>,
    done: Vec<bool>,
    touched: Vec<u32>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl UpwardScratch {
    fn new(n: usize) -> UpwardScratch {
        UpwardScratch {
            dist: vec![u64::MAX; n],
            done: vec![false; n],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Exhaustive upward Dijkstra from `root` over `graph`, with
    /// stall-on-demand against `stall_graph` (the opposite direction's
    /// upward edges). Calls `emit(v, d)` for every settled, unstalled
    /// vertex — exactly the set whose labels can be the apex of a shortest
    /// up-down path. Returns `(settled, stalled)` vertex counts.
    fn run(
        &mut self,
        graph: &UpGraph,
        stall_graph: &UpGraph,
        root: u32,
        mut emit: impl FnMut(u32, u64),
    ) -> (usize, usize) {
        for &v in &self.touched {
            self.dist[v as usize] = u64::MAX;
            self.done[v as usize] = false;
        }
        self.touched.clear();
        self.heap.clear();
        self.dist[root as usize] = 0;
        self.touched.push(root);
        self.heap.push(Reverse((0, root)));
        let mut settled = 0usize;
        let mut stall_count = 0usize;
        while let Some(Reverse((du, u))) = self.heap.pop() {
            let ui = u as usize;
            if self.done[ui] {
                continue; // stale entry
            }
            self.done[ui] = true;
            settled += 1;
            // Stall-on-demand: a strictly better label through a
            // higher-ranked neighbour proves this one useless as an apex.
            let stalled = stall_graph.neighbors(u).any(|(w, wt)| {
                let dw = self.dist[w as usize];
                dw != u64::MAX && dw.saturating_add(wt) < du
            });
            if stalled {
                stall_count += 1;
                continue;
            }
            emit(u, du);
            for (v, wt) in graph.neighbors(u) {
                let vi = v as usize;
                let nd = du.saturating_add(wt);
                if nd < self.dist[vi] {
                    if self.dist[vi] == u64::MAX {
                        self.touched.push(v);
                    }
                    self.dist[vi] = nd;
                    self.heap.push(Reverse((nd, v)));
                }
            }
        }
        (settled, stall_count)
    }
}

/// The full `sources × targets` distance matrix over a contraction
/// hierarchy, via target buckets: `|targets|` backward and `|sources|`
/// forward upward searches, both phases fanned out over a pool of
/// `threads` workers. Returns `None` when `deadline` expires between
/// per-vertex searches; the result is bit-identical at every thread count.
pub fn ch_many_to_many(
    ch: &ContractionHierarchy,
    sources: &[u32],
    targets: &[u32],
    threads: usize,
    deadline: Option<Instant>,
) -> Option<M2mResult> {
    let n = ch.num_vertices() as usize;
    if sources.is_empty() || targets.is_empty() {
        return Some(M2mResult { dist: Vec::new(), settled: 0, bucket_entries: 0, stalled: 0 });
    }
    debug_assert!(sources.iter().chain(targets).all(|&v| (v as usize) < n));
    let pool = Pool::new(threads);
    let expired = AtomicBool::new(false);

    // Bucket phase: each backward search collects its deposits locally;
    // the merge runs sequentially in target order, so bucket contents are
    // independent of the thread count (and the min-fold below is
    // order-independent anyway).
    // Per-target backward-search output: (bucket deposits, settled, stalled).
    type TargetDeposits = (Vec<(u32, u64)>, usize, usize);
    let per_target: Vec<TargetDeposits> = pool.map_with(
        targets.len(),
        || UpwardScratch::new(n),
        |scratch, ti| {
            if deadline_expired(&expired, deadline) {
                return (Vec::new(), 0, 0);
            }
            let mut deposits = Vec::new();
            let (settled, stalled) = scratch.run(&ch.bwd_up, &ch.fwd_up, targets[ti], |v, d| {
                deposits.push((v, d));
            });
            (deposits, settled, stalled)
        },
    );
    if expired.load(Ordering::Relaxed) {
        return None;
    }
    let mut settled: usize = per_target.iter().map(|(_, s, _)| s).sum();
    let mut stalled: usize = per_target.iter().map(|(_, _, st)| st).sum();
    let mut buckets: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
    let mut bucket_entries = 0usize;
    for (ti, (deposits, _, _)) in per_target.iter().enumerate() {
        bucket_entries += deposits.len();
        for &(v, d) in deposits {
            buckets[v as usize].push((ti as u32, d));
        }
    }

    // Scan phase: one forward upward search per source, reading the
    // (now immutable) buckets at every unstalled settled vertex.
    let num_targets = targets.len();
    let rows: Vec<(Vec<u64>, usize, usize)> = pool.map_with(
        sources.len(),
        || UpwardScratch::new(n),
        |scratch, si| {
            if deadline_expired(&expired, deadline) {
                return (Vec::new(), 0, 0);
            }
            let mut row = vec![INF; num_targets];
            let (settled, stalled) = scratch.run(&ch.fwd_up, &ch.bwd_up, sources[si], |v, d| {
                for &(ti, bd) in &buckets[v as usize] {
                    let total = d.saturating_add(bd);
                    let best = &mut row[ti as usize];
                    if total < *best {
                        *best = total;
                    }
                }
            });
            (row, settled, stalled)
        },
    );
    if expired.load(Ordering::Relaxed) {
        return None;
    }
    let mut dist = Vec::with_capacity(sources.len() * num_targets);
    for (row, s, st) in rows {
        settled += s;
        stalled += st;
        dist.extend_from_slice(&row);
    }
    Some(M2mResult { dist, settled, bucket_entries, stalled })
}

/// Per-landmark aggregates of the lower bounds over one target set; `O(k)`
/// per [`MultiTargetBounds::potential`] call, independent of `|targets|`.
pub struct MultiTargetBounds {
    /// `min_t d(Lᵢ, t)` — [`INF`] when landmark `i` reaches no target.
    tmin_fwd: Vec<u64>,
    /// `max_t d(t, Lᵢ)`, meaningful only when `bwd_all_finite[i]`.
    tmax_bwd: Vec<u64>,
    /// True when every target reaches landmark `i` — then a vertex that
    /// does not is provably disconnected from all of them.
    bwd_all_finite: Vec<bool>,
}

impl MultiTargetBounds {
    /// Aggregate `landmarks` over `targets`.
    pub fn new(landmarks: &Landmarks, targets: &[u32]) -> MultiTargetBounds {
        let k = landmarks.len();
        let mut tmin_fwd = vec![INF; k];
        let mut tmax_bwd = vec![0u64; k];
        let mut bwd_all_finite = vec![true; k];
        let (fwd, bwd) = landmarks.vectors();
        for i in 0..k {
            for &t in targets {
                let ti = t as usize;
                tmin_fwd[i] = tmin_fwd[i].min(fwd[i][ti]);
                if bwd[i][ti] == INF {
                    bwd_all_finite[i] = false;
                } else {
                    tmax_bwd[i] = tmax_bwd[i].max(bwd[i][ti]);
                }
            }
        }
        MultiTargetBounds { tmin_fwd, tmax_bwd, bwd_all_finite }
    }

    /// A consistent lower bound on the distance from `v` to its *nearest*
    /// target; [`INF`] when some landmark proves `v` reaches no target.
    pub fn potential(&self, landmarks: &Landmarks, v: u32) -> u64 {
        let (fwd, bwd) = landmarks.vectors();
        let vi = v as usize;
        let mut best = 0u64;
        for i in 0..self.tmin_fwd.len() {
            // min_t (d(L, t) − d(L, v)): useful only when L reaches v; if L
            // reaches v but no target, no target is reachable from v.
            let lv = fwd[i][vi];
            if lv != INF {
                if self.tmin_fwd[i] == INF {
                    return INF;
                }
                best = best.max(self.tmin_fwd[i].saturating_sub(lv));
            }
            // min_t (d(v, L) − d(t, L)): needs every target to reach L; a
            // vertex that cannot reach L then cannot reach any target.
            if self.bwd_all_finite[i] {
                let vl = bwd[i][vi];
                if vl == INF {
                    return INF;
                }
                best = best.max(vl.saturating_sub(self.tmax_bwd[i]));
            }
        }
        best
    }
}

/// The outcome of one multi-target ALT search.
#[derive(Debug, Clone)]
pub struct AltMultiResult {
    /// Exact distance per target (input order, duplicates answered
    /// individually); [`INF`] when unreachable.
    pub dist: Vec<u64>,
    /// Vertices settled by the single forward search.
    pub settled: usize,
}

/// One goal-directed forward search from `source` answering every target at
/// once. `weights` are `forward`'s per-slot weights (`None` = unit); the
/// potential is consistent, so every answered distance is bit-identical to
/// plain Dijkstra. The search stops as soon as all distinct targets are
/// settled (or proven unreachable by heap exhaustion / an [`INF`] bound).
pub fn alt_multi_target(
    forward: &Csr,
    weights: Option<&[i64]>,
    landmarks: &Landmarks,
    source: u32,
    targets: &[u32],
) -> AltMultiResult {
    let n = forward.num_vertices() as usize;
    let bounds = MultiTargetBounds::new(landmarks, targets);
    if bounds.potential(landmarks, source) == INF {
        // A landmark proves the source disconnected from every target.
        return AltMultiResult { dist: vec![INF; targets.len()], settled: 0 };
    }
    // Memoized potential: 0 = unknown is safe to collide with a real 0.
    let mut pi = vec![u64::MAX; n];
    let mut pi_known = vec![false; n];
    let mut potential = |v: u32| -> u64 {
        let vi = v as usize;
        if !pi_known[vi] {
            pi[vi] = bounds.potential(landmarks, v);
            pi_known[vi] = true;
        }
        pi[vi]
    };

    let mut is_target = vec![false; n];
    let mut remaining = 0usize;
    for &t in targets {
        if !is_target[t as usize] {
            is_target[t as usize] = true;
            remaining += 1;
        }
    }

    let mut dist = vec![u64::MAX; n];
    let mut done = vec![false; n];
    dist[source as usize] = 0;
    // Keys are d(v) + π(v); π never exceeds any real target distance, so
    // saturating adds cannot disturb finite answers.
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    heap.push(Reverse((potential(source), source)));
    let mut settled = 0usize;
    while let Some(Reverse((_, u))) = heap.pop() {
        let ui = u as usize;
        if done[ui] {
            continue; // stale entry
        }
        done[ui] = true;
        settled += 1;
        if is_target[ui] {
            remaining -= 1;
            if remaining == 0 {
                break; // every distinct target has its exact distance
            }
        }
        let du = dist[ui];
        for (slot, v) in forward.neighbors(u) {
            let vi = v as usize;
            if done[vi] {
                continue;
            }
            let w = weights.map_or(1, |ws| ws[slot] as u64);
            let nd = du.saturating_add(w);
            if nd >= dist[vi] {
                continue;
            }
            let p = potential(v);
            if p == INF {
                continue; // provably reaches no target: on no useful path
            }
            dist[vi] = nd;
            heap.push(Reverse((nd.saturating_add(p), v)));
        }
    }
    let dist = targets
        .iter()
        .map(|&t| if done[t as usize] { dist[t as usize] } else { u64::MAX })
        .collect();
    AltMultiResult { dist, settled }
}

/// The full `sources × targets` matrix over a landmark index: one
/// multi-target search per source, fanned out over a pool of `threads`
/// workers (results in input order — bit-identical at every thread count).
/// Returns `None` when `deadline` expires between per-source searches.
pub fn alt_many_to_many(
    forward: &Csr,
    weights: Option<&[i64]>,
    landmarks: &Landmarks,
    sources: &[u32],
    targets: &[u32],
    threads: usize,
    deadline: Option<Instant>,
) -> Option<M2mResult> {
    if sources.is_empty() || targets.is_empty() {
        return Some(M2mResult { dist: Vec::new(), settled: 0, bucket_entries: 0, stalled: 0 });
    }
    let pool = Pool::new(threads);
    let expired = AtomicBool::new(false);
    let rows: Vec<AltMultiResult> = pool.map(sources.len(), |si| {
        if deadline_expired(&expired, deadline) {
            return AltMultiResult { dist: Vec::new(), settled: 0 };
        }
        alt_multi_target(forward, weights, landmarks, sources[si], targets)
    });
    if expired.load(Ordering::Relaxed) {
        return None;
    }
    let mut dist = Vec::with_capacity(sources.len() * targets.len());
    let mut settled = 0usize;
    for row in rows {
        settled += row.settled;
        dist.extend_from_slice(&row.dist);
    }
    Some(M2mResult { dist, settled, bucket_entries: 0, stalled: 0 })
}

/// Sticky deadline poll shared by every fan-out loop: once one task sees
/// the deadline pass, the remaining tasks become no-ops.
fn deadline_expired(expired: &AtomicBool, deadline: Option<Instant>) -> bool {
    let Some(deadline) = deadline else {
        return false;
    };
    if expired.load(Ordering::Relaxed) || Instant::now() >= deadline {
        expired.store(true, Ordering::Relaxed);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsql_graph::{dijkstra_int, reverse_csr};

    /// 0->1, 0->2, 1->3, 2->3, 3->4 — the workspace's diamond.
    fn diamond() -> Csr {
        Csr::from_edges(5, &[0, 0, 1, 2, 3], &[1, 2, 3, 3, 4]).unwrap()
    }

    fn truth_matrix(
        g: &Csr,
        weights: Option<&[i64]>,
        sources: &[u32],
        targets: &[u32],
    ) -> Vec<u64> {
        let unit;
        let w = match weights {
            Some(w) => w,
            None => {
                unit = vec![1i64; g.num_edges()];
                &unit
            }
        };
        let mut out = Vec::new();
        for &s in sources {
            let d = dijkstra_int(g, s, &[], w).dist;
            for &t in targets {
                out.push(d[t as usize]);
            }
        }
        out
    }

    #[test]
    fn ch_matrix_matches_dijkstra_on_diamond() {
        let g = diamond();
        let raw = [10i64, 1, 1, 1, 1];
        let wf = g.permute_weights_int(&raw).unwrap();
        let ch = ContractionHierarchy::build(&g, Some(&wf), 1);
        let sources = [0u32, 1, 4, 0];
        let targets = [3u32, 4, 0, 3];
        let truth = truth_matrix(&g, Some(&wf), &sources, &targets);
        for threads in [1, 4] {
            let m = ch_many_to_many(&ch, &sources, &targets, threads, None).unwrap();
            assert_eq!(m.dist, truth, "threads {threads}");
            assert!(m.bucket_entries > 0);
        }
    }

    #[test]
    fn alt_matrix_matches_dijkstra_on_diamond() {
        let g = diamond();
        let r = reverse_csr(&g);
        let raw = [10i64, 1, 1, 1, 1];
        let wf = g.permute_weights_int(&raw).unwrap();
        let wb = r.permute_weights_int(&raw).unwrap();
        let lm = Landmarks::build(&g, &r, Some((&wf, &wb)), 3, 1);
        let sources = [0u32, 1, 4, 0];
        let targets = [3u32, 4, 0, 3];
        let truth = truth_matrix(&g, Some(&wf), &sources, &targets);
        for threads in [1, 4] {
            let m =
                alt_many_to_many(&g, Some(&wf), &lm, &sources, &targets, threads, None).unwrap();
            assert_eq!(m.dist, truth, "threads {threads}");
        }
    }

    #[test]
    fn self_pairs_and_unreachable_pairs() {
        let g = diamond();
        let r = reverse_csr(&g);
        let ch = ContractionHierarchy::build(&g, None, 1);
        let lm = Landmarks::build(&g, &r, None, 2, 1);
        let sources = [4u32, 0];
        let targets = [4u32, 0];
        // 4 reaches only itself; 0 reaches everything but nothing reaches 0.
        let expected = vec![0, INF, 3, 0];
        let m = ch_many_to_many(&ch, &sources, &targets, 1, None).unwrap();
        assert_eq!(m.dist, expected);
        let m = alt_many_to_many(&g, None, &lm, &sources, &targets, 1, None).unwrap();
        assert_eq!(m.dist, expected);
    }

    #[test]
    fn multi_target_search_answers_duplicate_targets() {
        let g = diamond();
        let r = reverse_csr(&g);
        let lm = Landmarks::build(&g, &r, None, 2, 1);
        let res = alt_multi_target(&g, None, &lm, 0, &[4, 3, 4, 0]);
        assert_eq!(res.dist, vec![3, 2, 3, 0]);
    }

    #[test]
    fn empty_sides_yield_empty_matrices() {
        let g = diamond();
        let r = reverse_csr(&g);
        let ch = ContractionHierarchy::build(&g, None, 1);
        let lm = Landmarks::build(&g, &r, None, 2, 1);
        assert!(ch_many_to_many(&ch, &[], &[0], 2, None).unwrap().dist.is_empty());
        assert!(ch_many_to_many(&ch, &[0], &[], 2, None).unwrap().dist.is_empty());
        assert!(alt_many_to_many(&g, None, &lm, &[], &[0], 2, None).unwrap().dist.is_empty());
    }

    #[test]
    fn expired_deadline_abandons_the_matrix() {
        let g = diamond();
        let r = reverse_csr(&g);
        let ch = ContractionHierarchy::build(&g, None, 1);
        let lm = Landmarks::build(&g, &r, None, 2, 1);
        let past = Instant::now() - std::time::Duration::from_millis(1);
        assert!(ch_many_to_many(&ch, &[0], &[4], 1, Some(past)).is_none());
        assert!(alt_many_to_many(&g, None, &lm, &[0], &[4], 1, Some(past)).is_none());
        let future = Instant::now() + std::time::Duration::from_secs(3600);
        assert!(ch_many_to_many(&ch, &[0], &[4], 1, Some(future)).is_some());
    }
}
