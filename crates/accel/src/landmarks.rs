//! Landmark selection and distance-vector precomputation.
//!
//! A landmark `L` contributes two triangle-inequality lower bounds on
//! `d(u, v)`:
//!
//! * `d(L, v) − d(L, u)` — from `d(L, v) ≤ d(L, u) + d(u, v)`;
//! * `d(u, L) − d(v, L)` — from `d(u, L) ≤ d(u, v) + d(v, L)`.
//!
//! Both are *feasible potentials* (they never overestimate the remaining
//! distance by more than an edge allows), and the maximum of feasible
//! potentials is feasible, so the bounds can drive A\* directly.
//!
//! Selection uses the classic **farthest-point** heuristic: the first
//! landmark is the highest-out-degree vertex, each next one the vertex
//! farthest (in hops) from all landmarks chosen so far, preferring vertices
//! no chosen landmark can reach at all — this spreads landmarks across the
//! periphery and across weakly connected components, which is where the
//! bounds are tightest. Ties break toward the smallest vertex id, so the
//! selection is fully deterministic.

use crate::INF;
use gsql_graph::{bfs, dijkstra_int, Csr};
use gsql_parallel::Pool;

/// A built ALT index: `k` landmarks plus their exact forward and backward
/// distance vectors over the whole vertex set.
#[derive(Debug, Clone)]
pub struct Landmarks {
    /// The chosen landmark vertices (dense ids).
    landmarks: Vec<u32>,
    /// `fwd[i][v]` = `d(landmarks[i], v)`, [`INF`] when unreachable.
    fwd: Vec<Vec<u64>>,
    /// `bwd[i][v]` = `d(v, landmarks[i])`, [`INF`] when unreachable.
    bwd: Vec<Vec<u64>>,
}

impl Landmarks {
    /// Build an index of (up to) `k` landmarks over `forward` and its
    /// reversal `backward`.
    ///
    /// `weights` are the per-CSR-slot weight arrays of the two graphs
    /// (`None` = unit weights / hop distances), exactly as
    /// [`Csr::permute_weights_int`] produces them — already validated
    /// strictly positive. The `2k` exact distance vectors are independent
    /// traversals and fan out over a pool of `threads` workers; the result
    /// is identical for every thread count.
    pub fn build(
        forward: &Csr,
        backward: &Csr,
        weights: Option<(&[i64], &[i64])>,
        k: usize,
        threads: usize,
    ) -> Landmarks {
        let n = forward.num_vertices();
        debug_assert_eq!(backward.num_vertices(), n);
        let landmarks = select_landmarks(forward, k.min(n as usize));
        // One traversal per (landmark, direction): 2k independent tasks.
        let pool = Pool::new(threads);
        let vectors: Vec<Vec<u64>> = pool.map(landmarks.len() * 2, |i| {
            let lm = landmarks[i / 2];
            let (graph, w) = if i % 2 == 0 {
                (forward, weights.map(|(f, _)| f))
            } else {
                (backward, weights.map(|(_, b)| b))
            };
            distance_vector(graph, lm, w)
        });
        let mut fwd = Vec::with_capacity(landmarks.len());
        let mut bwd = Vec::with_capacity(landmarks.len());
        for (i, v) in vectors.into_iter().enumerate() {
            if i % 2 == 0 {
                fwd.push(v);
            } else {
                bwd.push(v);
            }
        }
        Landmarks { landmarks, fwd, bwd }
    }

    /// The chosen landmark vertices.
    pub fn landmarks(&self) -> &[u32] {
        &self.landmarks
    }

    /// Clone the index into its raw parts `(landmarks, fwd, bwd)` for
    /// serialization.
    pub fn to_parts(&self) -> (Vec<u32>, Vec<Vec<u64>>, Vec<Vec<u64>>) {
        (self.landmarks.clone(), self.fwd.clone(), self.bwd.clone())
    }

    /// Reassemble an index from serialized parts, validating that every
    /// landmark has one forward and one backward vector and that all
    /// vectors cover the same vertex count. The error string names the
    /// violated invariant.
    pub fn from_parts(
        landmarks: Vec<u32>,
        fwd: Vec<Vec<u64>>,
        bwd: Vec<Vec<u64>>,
    ) -> Result<Landmarks, String> {
        if fwd.len() != landmarks.len() || bwd.len() != landmarks.len() {
            return Err(format!(
                "{} landmarks with {} forward / {} backward vectors",
                landmarks.len(),
                fwd.len(),
                bwd.len()
            ));
        }
        let n = fwd.first().map(Vec::len).unwrap_or(0);
        if fwd.iter().chain(bwd.iter()).any(|v| v.len() != n) {
            return Err("landmark distance vectors have inconsistent lengths".into());
        }
        if landmarks.iter().any(|&lm| lm as usize >= n.max(1)) && n > 0 {
            return Err("landmark vertex id out of range".into());
        }
        Ok(Landmarks { landmarks, fwd, bwd })
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.landmarks.len()
    }

    /// True when no landmarks were selected (empty graph or `k = 0`); the
    /// lower bound degenerates to 0 and ALT becomes plain bidirectional
    /// Dijkstra.
    pub fn is_empty(&self) -> bool {
        self.landmarks.is_empty()
    }

    /// Triangle-inequality lower bound on `d(u, v)`.
    ///
    /// Returns [`INF`] when some landmark *proves* `v` unreachable from `u`
    /// (e.g. `L` reaches `u` but not `v`).
    pub fn lower_bound(&self, u: u32, v: u32) -> u64 {
        if u == v {
            return 0;
        }
        let (ui, vi) = (u as usize, v as usize);
        let mut best = 0u64;
        for i in 0..self.landmarks.len() {
            // d(L, v) ≤ d(L, u) + d(u, v): useful only when L reaches u.
            let lu = self.fwd[i][ui];
            if lu != INF {
                let lv = self.fwd[i][vi];
                if lv == INF {
                    return INF; // L reaches u but not v ⇒ u cannot reach v
                }
                best = best.max(lv.saturating_sub(lu));
            }
            // d(u, L) ≤ d(u, v) + d(v, L): useful only when v reaches L.
            let vl = self.bwd[i][vi];
            if vl != INF {
                let ul = self.bwd[i][ui];
                if ul == INF {
                    return INF; // u would reach L through v otherwise
                }
                best = best.max(ul.saturating_sub(vl));
            }
        }
        best
    }

    /// The raw per-landmark distance vectors (`fwd[i][v] = d(Lᵢ, v)`,
    /// `bwd[i][v] = d(v, Lᵢ)`), for bound aggregation over target sets.
    pub(crate) fn vectors(&self) -> (&[Vec<u64>], &[Vec<u64>]) {
        (&self.fwd, &self.bwd)
    }

    /// Approximate heap size of the index in bytes (vectors only).
    pub fn memory_bytes(&self) -> usize {
        (self.fwd.iter().map(Vec::len).sum::<usize>()
            + self.bwd.iter().map(Vec::len).sum::<usize>())
            * std::mem::size_of::<u64>()
    }
}

/// Exact single-source distances: BFS hops when `weights` is `None`,
/// Dijkstra otherwise. Unreached vertices map to [`INF`].
fn distance_vector(graph: &Csr, source: u32, weights: Option<&[i64]>) -> Vec<u64> {
    match weights {
        None => bfs(graph, source, &[])
            .dist
            .into_iter()
            .map(|d| if d == u32::MAX { INF } else { d as u64 })
            .collect(),
        Some(w) => dijkstra_int(graph, source, &[], w).dist,
    }
}

/// Farthest-point landmark selection over forward hop distances.
///
/// Selection quality only affects pruning, never correctness, so cheap hop
/// BFS is used even for weighted indexes. Fully deterministic.
fn select_landmarks(forward: &Csr, k: usize) -> Vec<u32> {
    let n = forward.num_vertices();
    if k == 0 || n == 0 {
        return Vec::new();
    }
    // First landmark: maximum out-degree, smallest id on ties — a busy hub
    // whose distance vectors carry information about most of the graph.
    let first = (0..n).max_by_key(|&v| (forward.out_degree(v), std::cmp::Reverse(v))).unwrap_or(0);
    let mut chosen = vec![first];
    // mind[v] = hops from the nearest chosen landmark (INF = none reaches v).
    let mut mind = vec![INF; n as usize];
    while chosen.len() < k {
        let last = *chosen.last().expect("non-empty");
        let reach = bfs(forward, last, &[]);
        for (v, &d) in reach.dist.iter().enumerate() {
            if d != u32::MAX {
                mind[v] = mind[v].min(d as u64);
            }
        }
        for &c in &chosen {
            mind[c as usize] = 0;
        }
        // Farthest vertex; unreached (INF) vertices win, covering weakly
        // connected pieces no landmark sees yet. Smallest id on ties.
        let (next, score) = mind
            .iter()
            .enumerate()
            .max_by_key(|&(v, &d)| (d, std::cmp::Reverse(v)))
            .map(|(v, &d)| (v as u32, d))
            .expect("n > 0");
        if score == 0 {
            break; // every vertex is a landmark already
        }
        chosen.push(next);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0->1, 0->2, 1->3, 2->3, 3->4 — the workspace's diamond.
    fn diamond() -> (Csr, Csr) {
        let g = Csr::from_edges(5, &[0, 0, 1, 2, 3], &[1, 2, 3, 3, 4]).unwrap();
        let r = gsql_graph::reverse_csr(&g);
        (g, r)
    }

    #[test]
    fn bounds_are_admissible_on_diamond() {
        let (g, r) = diamond();
        let lm = Landmarks::build(&g, &r, None, 3, 1);
        assert!(!lm.is_empty());
        // True hop distances from 0: [0, 1, 1, 2, 3].
        let truth = gsql_graph::bfs(&g, 0, &[]).dist;
        for v in 0..5u32 {
            let lb = lm.lower_bound(0, v);
            let d = truth[v as usize];
            if d == u32::MAX {
                // Unreachable pairs may or may not be proven; lb is still
                // a lower bound on +inf, so anything is admissible.
                continue;
            }
            assert!(lb <= d as u64, "lb({v}) = {lb} exceeds true {d}");
        }
        // 4 has no out-edges: everything is unreachable from it, and a
        // landmark that reaches 0 but not backwards proves it.
        assert_eq!(lm.lower_bound(4, 0), INF);
    }

    #[test]
    fn build_is_thread_independent() {
        let (g, r) = diamond();
        let base = Landmarks::build(&g, &r, None, 4, 1);
        for threads in [2, 4, 8] {
            let par = Landmarks::build(&g, &r, None, 4, threads);
            assert_eq!(par.landmarks, base.landmarks, "threads {threads}");
            assert_eq!(par.fwd, base.fwd, "threads {threads}");
            assert_eq!(par.bwd, base.bwd, "threads {threads}");
        }
    }

    #[test]
    fn selection_is_deterministic_and_capped() {
        let (g, r) = diamond();
        let a = Landmarks::build(&g, &r, None, 64, 1);
        let b = Landmarks::build(&g, &r, None, 64, 4);
        assert_eq!(a.landmarks, b.landmarks);
        assert!(a.len() <= 5, "cannot exceed |V|");
        let empty = Csr::from_edges(0, &[], &[]).unwrap();
        let rev = gsql_graph::reverse_csr(&empty);
        assert!(Landmarks::build(&empty, &rev, None, 8, 2).is_empty());
    }

    #[test]
    fn weighted_bounds_respect_weights() {
        // 0 -> 1 -> 2 with weights 10, 20 (and a reverse-direction edge to
        // make it interesting): lb(0, 2) must be ≤ 30 and ideally tight.
        let g = Csr::from_edges(3, &[0, 1, 2], &[1, 2, 0]).unwrap();
        let r = gsql_graph::reverse_csr(&g);
        let wf = g.permute_weights_int(&[10, 20, 5]).unwrap();
        let wb = r.permute_weights_int(&[10, 20, 5]).unwrap();
        let lm = Landmarks::build(&g, &r, Some((&wf, &wb)), 3, 2);
        let truth = gsql_graph::dijkstra_int(&g, 0, &[], &wf).dist;
        for v in 0..3u32 {
            assert!(lm.lower_bound(0, v) <= truth[v as usize]);
        }
    }

    #[test]
    fn memory_accounting_is_plausible() {
        let (g, r) = diamond();
        let lm = Landmarks::build(&g, &r, None, 2, 1);
        assert_eq!(lm.memory_bytes(), lm.len() * 2 * 5 * 8);
    }
}
