//! # gsql-accel
//!
//! The path-acceleration subsystem: preprocessing that makes repeated
//! **point-to-point** shortest-path queries fast.
//!
//! The paper's §6 graph index removes the per-query CSR construction cost,
//! but every point-to-point query still explores the graph *blindly* from
//! the source: plain Dijkstra settles every vertex cheaper than the
//! destination. This crate adds the standard goal-directed remedy — **ALT**
//! (A\*, Landmarks, Triangle inequality; Goldberg & Harrelson, SODA'05):
//!
//! * [`Landmarks`] precomputes, for `k` landmark vertices chosen by
//!   farthest-point selection, the exact forward (`d(L, v)`) and backward
//!   (`d(v, L)`) distance vectors — one BFS/Dijkstra per vector, fanned out
//!   over the `gsql-parallel` worker pool;
//! * the triangle inequality turns those vectors into admissible,
//!   *consistent* lower bounds `lb(u, v) ≤ d(u, v)`;
//! * [`alt_bidirectional`] runs a bidirectional A\* whose forward and
//!   backward searches are guided by those bounds (average-potential
//!   formulation, so the two searches stay consistent with each other) and
//!   reports how many vertices each query actually **settled** — the
//!   pruning the preprocessing buys.
//!
//! Distances are computed in exact integer arithmetic (doubled potentials,
//! never halved until the final division), so the returned cost is
//! **bit-identical** to what plain Dijkstra over the same weights returns.
//! Unreachability is also exact: either a landmark bound proves it upfront
//! or both frontiers exhaust.
//!
//! On top of landmarks sits the second standard preprocessing tier,
//! **contraction hierarchies** (Geisberger et al., WEA'08):
//!
//! * [`ContractionHierarchy`] contracts vertices in an edge-difference +
//!   deleted-neighbours order, inserting witness-checked shortcuts, and
//!   materializes the upward/downward search graphs;
//! * [`ch_query`] answers point-to-point queries with a bidirectional
//!   upward Dijkstra plus stall-on-demand, settling a near-constant cone
//!   on road-like graphs.
//!
//! Shortcut weights are exact integer sums, so CH costs are bit-identical
//! to plain Dijkstra too — the same guarantee ALT gives, which is what
//! lets the SQL layer swap either in transparently.
//!
//! Batched (many-to-many) workloads get their own drivers in [`m2m`]:
//! [`ch_many_to_many`] shares the target side of the matrix through
//! per-vertex buckets (`S + T` upward searches instead of `S` full
//! Dijkstras) and [`alt_many_to_many`] answers each source's whole target
//! set with a single multi-target goal-directed search — both exact and
//! bit-identical at every thread count.

pub mod alt;
pub mod ch;
pub mod ch_query;
pub mod landmarks;
pub mod m2m;

pub use alt::{alt_bidirectional, AltResult};
pub use ch::{ChParts, ContractionHierarchy, UpGraphParts};
pub use ch_query::{ch_query, ChResult};
pub use landmarks::Landmarks;
pub use m2m::{alt_many_to_many, alt_multi_target, ch_many_to_many, AltMultiResult, M2mResult};

/// Sentinel distance meaning "unreachable" (matches the graph runtime's
/// Dijkstra contract).
pub const INF: u64 = u64::MAX;
