//! An interactive SQL shell for the `gsql` engine.
//!
//! ```text
//! cargo run -p gsql-shell --release
//! gsql> CREATE TABLE friends (src INTEGER, dst INTEGER);
//! gsql> INSERT INTO friends VALUES (1,2), (2,3);
//! gsql> SELECT CHEAPEST SUM(1) WHERE 1 REACHES 3 OVER friends EDGE (src, dst);
//! ```
//!
//! Meta commands: `\help`, `\tables`, `\load-snb <sf>`, `\quit`.
//! Statements may span lines; they run once a line ends with `;`.
//!
//! `--data-dir <path>` makes the database durable: statements are WAL-
//! logged, `CHECKPOINT` writes a snapshot, and restarting the shell over
//! the same directory recovers everything — including built path indexes,
//! which answer accelerated queries immediately (warm start).
//!
//! `--serve [addr]` starts the HTTP serving tier instead of the REPL:
//!
//! ```text
//! cargo run -p gsql-shell --release -- --serve 127.0.0.1:7432 --load-snb 0.3
//! curl -d '{"sql": "SELECT 1"}' http://127.0.0.1:7432/query
//! ```

use gsql_core::{Database, QueryResult, Session};
use gsql_datagen::{SnbDataset, SnbParams};
use gsql_server::{serve, ServerConfig};
use std::io::{BufRead, Write};
use std::sync::Arc;

const HELP: &str = "\
Commands:
  \\help            show this help
  \\tables          list tables (and graph indexes)
  \\load-snb <sf>   generate + load the LDBC-SNB-like dataset at a scale factor
  \\quit            exit
Any other input is SQL; statements end with ';'.
The paper's extension is available:
  SELECT CHEAPEST SUM([e:] expr) [AS (cost, path)] ...
  WHERE x REACHES y OVER edge_table [e] EDGE (src, dst)
  ... FROM t, UNNEST(t.path) [WITH ORDINALITY] AS r
Session statements (state persists for the whole shell session):
  SET <option> = <value>   e.g. SET graph_index = off, SET row_limit = 10000
  SET threads = N          parallel execution width (1 = sequential;
                           default: GSQL_THREADS env or all hardware threads)
  SHOW <option> | SHOW ALL
  EXPLAIN <query>          optimized logical plan
  EXPLAIN ANALYZE <query>  executed plan with per-operator rows and timing
  CHECKPOINT               force a durable snapshot (shell started with --data-dir)
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--serve") {
        run_server(&args);
        return;
    }
    let db = open_database(&args);
    // One session for the whole interactive run: SET/SHOW state and the
    // plan cache survive across statements.
    let session = db.session();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut buffer = String::new();

    println!("gsql shell — Extending SQL for Computing Shortest Paths (GRADES'17 reproduction)");
    println!("type \\help for help");
    loop {
        if buffer.is_empty() {
            print!("gsql> ");
        } else {
            print!("  ..> ");
        }
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if !run_meta(&db, trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        run_sql(&session, &sql);
    }
}

/// The value following `--flag`, when present and not another flag.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .filter(|v| !v.starts_with("--"))
}

/// Open the database the REPL or server runs over: durable at
/// `--data-dir <path>` (recovering any existing WAL/snapshot state), else
/// in-memory.
fn open_database(args: &[String]) -> Database {
    match flag_value(args, "--data-dir") {
        Some(dir) => match Database::open(dir) {
            Ok(db) => {
                println!("durable database at {dir} ({} tables)", db.catalog().table_names().len());
                db
            }
            Err(e) => {
                eprintln!("failed to open data dir {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => Database::new(),
    }
}

/// `--serve [addr]` mode: load an (optional) dataset, start the HTTP
/// tier, block until ctrl-c / SIGTERM kills the process. Flags:
/// `--workers N`, `--queue-depth N`, `--timeout-ms N`, `--load-snb SF`,
/// `--data-dir PATH` (durable WAL + checkpoints).
fn run_server(args: &[String]) {
    let flag = |name: &str| flag_value(args, name);
    let db = open_database(args);
    if let Some(sf) = flag("--load-snb").and_then(|v| v.parse::<f64>().ok()) {
        let t0 = std::time::Instant::now();
        let data = SnbDataset::generate(SnbParams::new(sf));
        data.load_into(&db).expect("dataset load failed");
        println!(
            "loaded persons ({}) and friends ({}) in {:?}",
            data.num_persons,
            data.num_edges,
            t0.elapsed()
        );
    }
    let mut config = ServerConfig::default();
    if let Some(addr) = flag("--serve") {
        config.addr = addr.to_string();
    }
    if let Some(v) = flag("--workers").and_then(|v| v.parse().ok()) {
        config.workers = v;
    }
    if let Some(v) = flag("--queue-depth").and_then(|v| v.parse().ok()) {
        config.queue_depth = v;
    }
    if let Some(v) = flag("--timeout-ms").and_then(|v| v.parse().ok()) {
        config.default_timeout_ms = Some(v);
    }
    config.data_dir = flag("--data-dir").map(std::path::PathBuf::from);
    let workers = config.workers;
    match serve(Arc::new(db), config) {
        Ok(server) => {
            println!("serving on http://{} ({} workers)", server.addr(), workers);
            println!("endpoints: POST /query, GET /health, GET /stats");
            // No signal handling without external crates: park forever and
            // let process termination tear the threads down.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("failed to start server: {e}");
            std::process::exit(1);
        }
    }
}

/// Handle a meta command; returns false to exit the shell.
fn run_meta(db: &Database, command: &str) -> bool {
    let mut parts = command.split_whitespace();
    match parts.next() {
        Some("\\quit") | Some("\\q") => return false,
        Some("\\help") | Some("\\h") => print!("{HELP}"),
        Some("\\tables") => {
            for name in db.catalog().table_names() {
                match db.catalog().get(&name) {
                    Ok(t) => println!("{name}  ({} rows) {}", t.row_count(), t.schema()),
                    Err(_) => println!("{name}"),
                }
            }
            let indexes = db.graph_indexes().index_names();
            if !indexes.is_empty() {
                println!("graph indexes: {}", indexes.join(", "));
            }
        }
        Some("\\import") => {
            let (table, file) = match (parts.next(), parts.next()) {
                (Some(t), Some(f)) => (t, f),
                _ => {
                    println!("usage: \\import <table> <file.csv>");
                    return true;
                }
            };
            match std::fs::File::open(file) {
                Ok(f) => match db.import_csv(table, std::io::BufReader::new(f)) {
                    Ok(n) => println!("{n} row(s) imported into {table}"),
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("error opening {file}: {e}"),
            }
        }
        Some("\\export") => {
            let Some(file) = parts.next() else {
                println!("usage: \\export <file.csv> <query>");
                return true;
            };
            let query: String = parts.collect::<Vec<_>>().join(" ");
            if query.is_empty() {
                println!("usage: \\export <file.csv> <query>");
                return true;
            }
            match db.export_csv(&query) {
                Ok(csv) => match std::fs::write(file, csv) {
                    Ok(()) => println!("wrote {file}"),
                    Err(e) => println!("error writing {file}: {e}"),
                },
                Err(e) => println!("error: {e}"),
            }
        }
        Some("\\load-snb") => match parts.next().and_then(|s| s.parse::<f64>().ok()) {
            Some(sf) => {
                let t0 = std::time::Instant::now();
                let data = SnbDataset::generate(SnbParams::new(sf));
                match data.load_into(db) {
                    Ok(()) => println!(
                        "loaded persons ({}) and friends ({}) in {:?}",
                        data.num_persons,
                        data.num_edges,
                        t0.elapsed()
                    ),
                    Err(e) => println!("error: {e}"),
                }
            }
            None => println!("usage: \\load-snb <scale factor>, e.g. \\load-snb 0.1"),
        },
        _ => println!("unknown command; try \\help"),
    }
    true
}

fn run_sql(session: &Session<'_>, sql: &str) {
    let t0 = std::time::Instant::now();
    match session.execute_script(sql) {
        Ok(results) => {
            for r in results {
                match r {
                    QueryResult::Table(t) => print!("{t}"),
                    QueryResult::Affected(n) => println!("{n} row(s) affected"),
                    QueryResult::Ok => println!("ok"),
                }
            }
            println!("({:?})", t0.elapsed());
        }
        Err(e) => println!("error: {e}"),
    }
}
