//! Property-based round-trip tests: generate random ASTs, render them to
//! SQL, re-parse, and require structural equality. This pins down both the
//! renderer (canonical parenthesization) and the parser's precedence rules.

use gsql_parser::ast::*;
use gsql_parser::parse_statement;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Identifiers that are never keywords.
    "[a-z][a-z0-9_]{0,6}xx".prop_map(|s| s)
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        any::<i32>().prop_map(|v| Literal::Int(v as i64)),
        // Finite doubles with a short decimal representation survive
        // display->parse exactly.
        (-1000i32..1000, 1u32..100).prop_map(|(a, b)| Literal::Float(a as f64 / b as f64)),
        "[a-zA-Z0-9 ']{0,12}".prop_map(Literal::String),
        any::<bool>().prop_map(Literal::Bool),
        (1980u32..2030, 1u32..13, 1u32..29)
            .prop_map(|(y, m, d)| Literal::Date(format!("{y:04}-{m:02}-{d:02}"))),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal().prop_map(Expr::Literal),
        ident().prop_map(|name| Expr::Column { table: None, name }),
        (ident(), ident()).prop_map(|(t, name)| Expr::Column { table: Some(t), name }),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinaryOp::Add), Just(BinaryOp::Sub), Just(BinaryOp::Mul),
                Just(BinaryOp::Div), Just(BinaryOp::Mod), Just(BinaryOp::Concat),
                Just(BinaryOp::Eq), Just(BinaryOp::NotEq), Just(BinaryOp::Lt),
                Just(BinaryOp::LtEq), Just(BinaryOp::Gt), Just(BinaryOp::GtEq),
                Just(BinaryOp::And), Just(BinaryOp::Or),
            ])
                .prop_map(|(l, r, op)| Expr::Binary {
                    left: Box::new(l),
                    op,
                    right: Box::new(r)
                }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated
            }),
            (inner.clone(), prop::collection::vec(inner.clone(), 1..4), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated
                }
            ),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Neg, expr: Box::new(e) }),
            (inner.clone(), prop_oneof![
                Just(TypeName::Integer), Just(TypeName::Double), Just(TypeName::Varchar),
                Just(TypeName::Boolean), Just(TypeName::Date)
            ])
                .prop_map(|(e, ty)| Expr::Cast { expr: Box::new(e), ty }),
            (ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::Function { name, args, distinct: false }),
            (
                prop::option::of(inner.clone().prop_map(Box::new)),
                prop::collection::vec((inner.clone(), inner.clone()), 1..3),
                prop::option::of(inner.clone().prop_map(Box::new)),
            )
                .prop_map(|(operand, branches, else_expr)| Expr::Case {
                    operand,
                    branches,
                    else_expr
                }),
        ]
    })
}

/// Normalize the one representational ambiguity: the parser folds `-5`
/// into a negative literal, while a generated AST may hold
/// `Unary(Neg, Literal(5))`. Everything else must match exactly.
fn normalize(e: &Expr) -> Expr {
    match e {
        Expr::Unary { op: UnaryOp::Neg, expr } => match normalize(expr) {
            Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(-v)),
            Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
            inner => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) },
        },
        Expr::Unary { op, expr } => Expr::Unary { op: *op, expr: Box::new(normalize(expr)) },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(normalize(left)),
            op: *op,
            right: Box::new(normalize(right)),
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(normalize(expr)), negated: *negated }
        }
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(normalize(expr)),
            list: list.iter().map(normalize).collect(),
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(normalize(expr)),
            low: Box::new(normalize(low)),
            high: Box::new(normalize(high)),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(normalize(expr)),
            pattern: Box::new(normalize(pattern)),
            negated: *negated,
        },
        Expr::Case { operand, branches, else_expr } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(normalize(o))),
            branches: branches.iter().map(|(w, t)| (normalize(w), normalize(t))).collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(normalize(e))),
        },
        Expr::Cast { expr, ty } => Expr::Cast { expr: Box::new(normalize(expr)), ty: *ty },
        Expr::Function { name, args, distinct } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(normalize).collect(),
            distinct: *distinct,
        },
        Expr::Reaches(r) => Expr::Reaches(Box::new(ReachesPredicate {
            source: normalize(&r.source),
            dest: normalize(&r.dest),
            edge_table: r.edge_table.clone(),
            alias: r.alias.clone(),
            src_col: r.src_col.clone(),
            dst_col: r.dst_col.clone(),
        })),
        other => other.clone(),
    }
}

fn normalize_stmt(stmt: &Statement) -> Statement {
    // Only the query shapes used in this test file need normalization.
    let Statement::Query(q) = stmt else { return stmt.clone() };
    let body = match &q.body {
        SetExpr::Select(s) => SetExpr::Select(Box::new(Select {
            distinct: s.distinct,
            items: s
                .items
                .iter()
                .map(|it| match it {
                    SelectItem::Expr { expr, alias } => SelectItem::Expr {
                        expr: normalize(expr),
                        alias: alias.clone(),
                    },
                    SelectItem::CheapestSum { binding, weight, aliases } => {
                        SelectItem::CheapestSum {
                            binding: binding.clone(),
                            weight: normalize(weight),
                            aliases: aliases.clone(),
                        }
                    }
                    other => other.clone(),
                })
                .collect(),
            from: s.from.clone(),
            where_clause: s.where_clause.as_ref().map(normalize),
            group_by: s.group_by.iter().map(normalize).collect(),
            having: s.having.as_ref().map(normalize),
        })),
        other => other.clone(),
    };
    Statement::Query(Query {
        ctes: q.ctes.clone(),
        body,
        order_by: q
            .order_by
            .iter()
            .map(|o| OrderItem { expr: normalize(&o.expr), asc: o.asc })
            .collect(),
        limit: q.limit.as_ref().map(normalize),
        offset: q.offset.as_ref().map(normalize),
    })
}

fn assert_round_trip(stmt: &Statement) {
    let rendered = stmt.to_string();
    let reparsed = parse_statement(&rendered)
        .unwrap_or_else(|e| panic!("re-parse failed: {e}\nrendered: {rendered}"));
    assert_eq!(
        normalize_stmt(stmt),
        normalize_stmt(&reparsed),
        "rendered: {rendered}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn expressions_round_trip(e in arb_expr()) {
        let stmt = Statement::Query(Query {
            ctes: vec![],
            body: SetExpr::Select(Box::new(Select {
                distinct: false,
                items: vec![SelectItem::Expr { expr: e, alias: None }],
                from: vec![],
                where_clause: None,
                group_by: vec![],
                having: None,
            })),
            order_by: vec![],
            limit: None,
            offset: None,
        });
        assert_round_trip(&stmt);
    }

    #[test]
    fn where_and_reaches_round_trip(
        x in ident(), y in ident(), table in ident(),
        s in ident(), d in ident(), use_alias in any::<bool>(),
        weight in arb_expr(),
    ) {
        let alias = use_alias.then(|| "tv".to_string());
        let stmt = Statement::Query(Query {
            ctes: vec![],
            body: SetExpr::Select(Box::new(Select {
                distinct: false,
                items: vec![SelectItem::CheapestSum {
                    binding: alias.clone(),
                    weight,
                    aliases: CheapestAlias::CostAndPath("c".into(), "p".into()),
                }],
                from: vec![],
                where_clause: Some(Expr::Reaches(Box::new(ReachesPredicate {
                    source: Expr::Column { table: None, name: x },
                    dest: Expr::Column { table: None, name: y },
                    edge_table: TableRef::Base { name: table, alias: None },
                    alias,
                    src_col: s,
                    dst_col: d,
                }))),
                group_by: vec![],
                having: None,
            })),
            order_by: vec![],
            limit: None,
            offset: None,
        });
        assert_round_trip(&stmt);
    }

    #[test]
    fn order_limit_round_trip(
        cols in prop::collection::vec((ident(), any::<bool>()), 1..4),
        limit in prop::option::of(0i64..1000),
        offset in prop::option::of(0i64..1000),
    ) {
        let stmt = Statement::Query(Query {
            ctes: vec![],
            body: SetExpr::Select(Box::new(Select {
                distinct: true,
                items: vec![SelectItem::Wildcard],
                from: vec![TableRef::Base { name: "txx".into(), alias: None }],
                where_clause: None,
                group_by: vec![],
                having: None,
            })),
            order_by: cols
                .into_iter()
                .map(|(name, asc)| OrderItem {
                    expr: Expr::Column { table: None, name },
                    asc,
                })
                .collect(),
            limit: limit.map(|v| Expr::Literal(Literal::Int(v))),
            offset: offset.map(|v| Expr::Literal(Literal::Int(v))),
        });
        assert_round_trip(&stmt);
    }

    /// The lexer never panics on arbitrary input and error positions are
    /// within the input.
    #[test]
    fn lexer_total_on_arbitrary_input(src in "\\PC{0,60}") {
        match gsql_parser::Lexer::new(&src).tokenize() {
            Ok(tokens) => prop_assert!(!tokens.is_empty()),
            Err(e) => {
                prop_assert!(e.line >= 1);
                prop_assert!(e.column >= 1);
            }
        }
    }

    /// The parser never panics on arbitrary statement-shaped input.
    #[test]
    fn parser_total_on_arbitrary_input(src in "(SELECT|INSERT|CREATE)? ?\\PC{0,60}") {
        let _ = parse_statement(&src);
    }
}
