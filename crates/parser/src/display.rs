//! Rendering the AST back to SQL text.
//!
//! The renderer produces canonical SQL that re-parses to the same AST (up to
//! parameter numbering), which the round-trip property tests rely on.

use crate::ast::*;
use std::fmt;

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeName::Integer => "INTEGER",
            TypeName::Double => "DOUBLE",
            TypeName::Varchar => "VARCHAR",
            TypeName::Boolean => "BOOLEAN",
            TypeName::Date => "DATE",
        })
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "NULL"),
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Date(d) => write!(f, "DATE '{d}'"),
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        })
    }
}

/// Parenthesizes conservatively (every compound sub-expression) so
/// precedence never changes on re-parse.
impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Column { table: Some(t), name } => write!(f, "{t}.{name}"),
            Expr::Column { table: None, name } => write!(f, "{name}"),
            Expr::Param(_) => write!(f, "?"),
            // The space prevents `--` (a comment) when the operand
            // renders with a leading minus.
            Expr::Unary { op: UnaryOp::Neg, expr } => write!(f, "(- {expr})"),
            Expr::Unary { op: UnaryOp::Not, expr } => write!(f, "(NOT {expr})"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::Between { expr, low, high, negated } => {
                write!(f, "({expr} {}BETWEEN {low} AND {high})", if *negated { "NOT " } else { "" })
            }
            Expr::Like { expr, pattern, negated } => {
                write!(f, "({expr} {}LIKE {pattern})", if *negated { "NOT " } else { "" })
            }
            Expr::Case { operand, branches, else_expr } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, ty } => write!(f, "CAST({expr} AS {ty})"),
            Expr::Function { name, args, distinct } => {
                if args.is_empty() && name.eq_ignore_ascii_case("count") {
                    return write!(f, "COUNT(*)");
                }
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Reaches(r) => {
                write!(f, "({} REACHES {} OVER ", r.source, r.dest)?;
                match &r.edge_table {
                    TableRef::Base { name, .. } => write!(f, "{name}")?,
                    TableRef::Derived { query, .. } => write!(f, "({query})")?,
                    other => write!(f, "{other}")?,
                }
                if let Some(a) = &r.alias {
                    write!(f, " {a}")?;
                }
                write!(f, " EDGE ({}, {}))", r.src_col, r.dst_col)
            }
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias: Some(a) } => write!(f, "{expr} AS {a}"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
            SelectItem::CheapestSum { binding, weight, aliases } => {
                write!(f, "CHEAPEST SUM(")?;
                if let Some(b) = binding {
                    write!(f, "{b}: ")?;
                }
                write!(f, "{weight})")?;
                match aliases {
                    CheapestAlias::None => Ok(()),
                    CheapestAlias::Cost(c) => write!(f, " AS {c}"),
                    CheapestAlias::CostAndPath(c, p) => write!(f, " AS ({c}, {p})"),
                }
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Base { name, alias: Some(a) } => write!(f, "{name} {a}"),
            TableRef::Base { name, alias: None } => write!(f, "{name}"),
            TableRef::Derived { query, alias } => write!(f, "({query}) {alias}"),
            TableRef::Join { left, right, kind, on } => {
                let kw = match kind {
                    JoinKind::Inner => "JOIN",
                    JoinKind::LeftOuter => "LEFT JOIN",
                    JoinKind::Cross => "CROSS JOIN",
                };
                write!(f, "{left} {kw} {right}")?;
                if let Some(on) = on {
                    write!(f, " ON {on}")?;
                }
                Ok(())
            }
            TableRef::Unnest { expr, with_ordinality, alias, column_aliases } => {
                write!(f, "UNNEST({expr})")?;
                if *with_ordinality {
                    write!(f, " WITH ORDINALITY")?;
                }
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                    if let Some(cols) = column_aliases {
                        write!(f, " ({})", cols.join(", "))?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::Union { left, right, all } => {
                write!(f, "{left} UNION {}{right}", if *all { "ALL " } else { "" })
            }
            SetExpr::Values(rows) => {
                write!(f, "VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.ctes.is_empty() {
            write!(f, "WITH ")?;
            for (i, cte) in self.ctes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", cte.name)?;
                if let Some(cols) = &cte.columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                write!(f, " AS ({})", cte.query)?;
            }
            write!(f, " ")?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", o.expr, if o.asc { "" } else { " DESC" })?;
            }
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = &self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", c.name, c.ty)?;
                    if c.primary_key {
                        write!(f, " PRIMARY KEY")?;
                    } else if c.not_null {
                        write!(f, " NOT NULL")?;
                    }
                }
                write!(f, ")")
            }
            Statement::DropTable { name } => write!(f, "DROP TABLE {name}"),
            Statement::Insert { table, columns, source } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                write!(f, " {source}")
            }
            Statement::Delete { table, filter } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(w) = filter {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Update { table, assignments, filter } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(w) = filter {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::CreateGraphIndex { name, table, src_col, dst_col } => {
                write!(f, "CREATE GRAPH INDEX {name} ON {table} EDGE ({src_col}, {dst_col})")
            }
            Statement::DropGraphIndex { name } => write!(f, "DROP GRAPH INDEX {name}"),
            Statement::CreatePathIndex {
                name,
                table,
                src_col,
                dst_col,
                weight_col,
                method,
                if_not_exists,
            } => {
                write!(f, "CREATE PATH INDEX ")?;
                if *if_not_exists {
                    write!(f, "IF NOT EXISTS ")?;
                }
                write!(f, "{name} ON {table} EDGE ({src_col}, {dst_col})")?;
                if let Some(w) = weight_col {
                    write!(f, " WEIGHT {w}")?;
                }
                match method {
                    PathIndexMethod::Landmarks(k) => write!(f, " USING LANDMARKS({k})"),
                    PathIndexMethod::Contraction => write!(f, " USING CONTRACTION"),
                }
            }
            Statement::DropPathIndex { name, if_exists } => {
                write!(f, "DROP PATH INDEX ")?;
                if *if_exists {
                    write!(f, "IF EXISTS ")?;
                }
                write!(f, "{name}")
            }
            Statement::ShowPathIndexes => write!(f, "SHOW PATH INDEXES"),
            Statement::Query(q) => write!(f, "{q}"),
            Statement::Explain(q) => write!(f, "EXPLAIN {q}"),
            Statement::ExplainAnalyze(q) => write!(f, "EXPLAIN ANALYZE {q}"),
            Statement::Describe { name } => write!(f, "DESCRIBE {name}"),
            Statement::Set { name, value } => write!(f, "SET {name} = {value}"),
            Statement::Show { name: Some(n) } => write!(f, "SHOW {n}"),
            Statement::Show { name: None } => write!(f, "SHOW ALL"),
            Statement::Checkpoint => write!(f, "CHECKPOINT"),
        }
    }
}

impl fmt::Display for SetValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetValue::Literal(l) => write!(f, "{l}"),
            SetValue::Ident(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_statement;

    /// Parse, render, re-parse: the ASTs must match.
    fn round_trip(src: &str) {
        let first = parse_statement(src).unwrap();
        let rendered = first.to_string();
        let second = parse_statement(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}"));
        assert_eq!(first, second, "round trip changed the AST for {src:?}\nrendered: {rendered}");
    }

    #[test]
    fn round_trips_paper_queries() {
        round_trip("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)");
        round_trip(
            "SELECT p1.firstName || ' ' || p1.lastName AS person1, CHEAPEST SUM(1) AS distance \
             FROM persons p1, persons p2 \
             WHERE p1.id = ? AND p2.id = ? AND p1.id REACHES p2.id OVER friends EDGE (src, dst)",
        );
        round_trip(
            "WITH friends1 AS (SELECT * FROM friends WHERE creationDate < '2011-01-01') \
             SELECT firstName || ' ' || lastName AS person, \
             CHEAPEST SUM(f: CAST(weight * 2 AS INTEGER)) AS (cost, path) \
             FROM persons WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)",
        );
        round_trip(
            "SELECT T.X, T.cost, R.S FROM (SELECT 1 AS X) T, \
             UNNEST(T.path) WITH ORDINALITY AS R (s, d, ord)",
        );
    }

    #[test]
    fn round_trips_general_sql() {
        round_trip("SELECT 1 + 2 * 3, -x, NOT a, 'it''s', DATE '2010-03-24'");
        round_trip("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC LIMIT 3 OFFSET 1");
        round_trip("SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y CROSS JOIN d");
        round_trip("SELECT CASE WHEN a THEN 1 ELSE 2 END, CASE x WHEN 1 THEN 'a' END FROM t");
        round_trip("SELECT x FROM t WHERE a BETWEEN 1 AND 2 OR b NOT LIKE 'z%' AND c IN (1, 2)");
        round_trip("VALUES (1, 'a'), (2, 'b')");
        round_trip("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3");
        round_trip("CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR NOT NULL, c DOUBLE)");
        round_trip("INSERT INTO t (a, b) VALUES (1, 'x')");
        round_trip("UPDATE t SET a = a + 1 WHERE b = 'x'");
        round_trip("DELETE FROM t WHERE a IS NOT NULL");
        round_trip("CREATE GRAPH INDEX gi ON friends EDGE (p1, p2)");
        round_trip("CREATE PATH INDEX pi ON roads EDGE (a, b) WEIGHT len USING LANDMARKS(16)");
        round_trip("CREATE PATH INDEX pi ON friends EDGE (p1, p2) USING LANDMARKS(8)");
        round_trip("CREATE PATH INDEX ci ON roads EDGE (a, b) WEIGHT len USING CONTRACTION");
        round_trip("CREATE PATH INDEX IF NOT EXISTS ci ON roads EDGE (a, b) USING CONTRACTION");
        round_trip("DROP PATH INDEX pi");
        round_trip("DROP PATH INDEX IF EXISTS pi");
        round_trip("SHOW PATH INDEXES");
        round_trip("SELECT DISTINCT a FROM t");
    }

    #[test]
    fn round_trips_session_statements() {
        round_trip("SET graph_index = off");
        round_trip("SET graph_index = on");
        round_trip("SET row_limit = 1000");
        round_trip("SET plan_cache_size = 0");
        round_trip("SET tag = 'hello'");
        round_trip("SHOW graph_index");
        round_trip("SHOW ALL");
        round_trip("EXPLAIN ANALYZE SELECT 1");
        round_trip(
            "EXPLAIN ANALYZE SELECT CHEAPEST SUM(1) WHERE ? REACHES ? \
             OVER friends EDGE (src, dst)",
        );
    }
}
