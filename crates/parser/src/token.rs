//! Token definitions.

use std::fmt;

/// SQL keywords recognized by the lexer (case-insensitive).
///
/// Per the paper §3.1, `CHEAPEST`, `REACHES`, `EDGE` and `UNNEST` are
/// reserved alongside the standard keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are the keywords themselves
pub enum Keyword {
    All,
    And,
    As,
    Asc,
    Between,
    Boolean,
    By,
    Case,
    Cast,
    Cheapest,
    Create,
    Cross,
    Date,
    Delete,
    Desc,
    Describe,
    Distinct,
    Double,
    Drop,
    Edge,
    Else,
    End,
    Exists,
    Explain,
    False,
    Float,
    From,
    Graph,
    Group,
    Having,
    In,
    Index,
    Inner,
    Insert,
    Int,
    Integer,
    Bigint,
    Into,
    Is,
    Join,
    Key,
    Left,
    Like,
    Limit,
    Not,
    Null,
    Offset,
    On,
    Or,
    Order,
    Ordinality,
    Outer,
    Over,
    Primary,
    Reaches,
    Right,
    Select,
    Set,
    Table,
    Text,
    Then,
    True,
    Union,
    Unnest,
    Update,
    Values,
    Varchar,
    When,
    Where,
    With,
}

impl Keyword {
    /// Look up a keyword from an identifier-shaped word (case-insensitive).
    pub fn parse(word: &str) -> Option<Keyword> {
        use Keyword::*;
        let folded = word.to_ascii_uppercase();
        Some(match folded.as_str() {
            "ALL" => All,
            "AND" => And,
            "AS" => As,
            "ASC" => Asc,
            "BETWEEN" => Between,
            "BIGINT" => Bigint,
            "BOOLEAN" => Boolean,
            "BY" => By,
            "CASE" => Case,
            "CAST" => Cast,
            "CHEAPEST" => Cheapest,
            "CREATE" => Create,
            "CROSS" => Cross,
            "DATE" => Date,
            "DELETE" => Delete,
            "DESC" => Desc,
            "DESCRIBE" => Describe,
            "DISTINCT" => Distinct,
            "DOUBLE" => Double,
            "DROP" => Drop,
            "EDGE" => Edge,
            "ELSE" => Else,
            "END" => End,
            "EXISTS" => Exists,
            "EXPLAIN" => Explain,
            "FALSE" => False,
            "FLOAT" => Float,
            "FROM" => From,
            "GRAPH" => Graph,
            "GROUP" => Group,
            "HAVING" => Having,
            "IN" => In,
            "INDEX" => Index,
            "INNER" => Inner,
            "INSERT" => Insert,
            "INT" => Int,
            "INTEGER" => Integer,
            "INTO" => Into,
            "IS" => Is,
            "JOIN" => Join,
            "KEY" => Key,
            "LEFT" => Left,
            "LIKE" => Like,
            "LIMIT" => Limit,
            "NOT" => Not,
            "NULL" => Null,
            "OFFSET" => Offset,
            "ON" => On,
            "OR" => Or,
            "ORDER" => Order,
            "ORDINALITY" => Ordinality,
            "OUTER" => Outer,
            "OVER" => Over,
            "PRIMARY" => Primary,
            "REACHES" => Reaches,
            "RIGHT" => Right,
            "SELECT" => Select,
            "SET" => Set,
            "TABLE" => Table,
            "TEXT" => Text,
            "THEN" => Then,
            "TRUE" => True,
            "UNION" => Union,
            "UNNEST" => Unnest,
            "UPDATE" => Update,
            "VALUES" => Values,
            "VARCHAR" => Varchar,
            "WHEN" => When,
            "WHERE" => Where,
            "WITH" => With,
            _ => return None,
        })
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier (unquoted word that is not a keyword, or `"quoted"`).
    Ident(String),
    /// Reserved word.
    Keyword(Keyword),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal with quotes and escapes resolved.
    String(String),
    /// `?` positional host parameter.
    Question,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `:` (used by the `CHEAPEST SUM(e: expr)` binding syntax)
    Colon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `||` string concatenation
    Concat,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier '{s}'"),
            Token::Keyword(k) => write!(f, "keyword {k:?}"),
            Token::Int(v) => write!(f, "integer {v}"),
            Token::Float(v) => write!(f, "float {v}"),
            Token::String(s) => write!(f, "string '{s}'"),
            Token::Question => write!(f, "'?'"),
            Token::LParen => write!(f, "'('"),
            Token::RParen => write!(f, "')'"),
            Token::Comma => write!(f, "','"),
            Token::Dot => write!(f, "'.'"),
            Token::Semicolon => write!(f, "';'"),
            Token::Colon => write!(f, "':'"),
            Token::Star => write!(f, "'*'"),
            Token::Plus => write!(f, "'+'"),
            Token::Minus => write!(f, "'-'"),
            Token::Slash => write!(f, "'/'"),
            Token::Percent => write!(f, "'%'"),
            Token::Eq => write!(f, "'='"),
            Token::NotEq => write!(f, "'<>'"),
            Token::Lt => write!(f, "'<'"),
            Token::LtEq => write!(f, "'<='"),
            Token::Gt => write!(f, "'>'"),
            Token::GtEq => write!(f, "'>='"),
            Token::Concat => write!(f, "'||'"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::parse("select"), Some(Keyword::Select));
        assert_eq!(Keyword::parse("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::parse("REACHES"), Some(Keyword::Reaches));
        assert_eq!(Keyword::parse("cheapest"), Some(Keyword::Cheapest));
        assert_eq!(Keyword::parse("frobnicate"), None);
    }

    #[test]
    fn paper_keywords_are_reserved() {
        for w in ["CHEAPEST", "REACHES", "EDGE", "UNNEST"] {
            assert!(Keyword::parse(w).is_some(), "{w} must be a keyword");
        }
    }
}
