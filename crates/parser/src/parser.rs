//! Recursive-descent parser.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::Lexer;
use crate::token::{Keyword, SpannedToken, Token};
use crate::Result;

/// Parse a semicolon-separated script into statements.
pub fn parse_sql(src: &str) -> Result<Vec<Statement>> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut parser = Parser::new(tokens);
    let mut out = Vec::new();
    loop {
        while parser.eat_token(&Token::Semicolon) {}
        if parser.at_eof() {
            return Ok(out);
        }
        out.push(parser.parse_statement()?);
        if !parser.at_eof() && !parser.check_token(&Token::Semicolon) {
            return Err(parser.unexpected("';' between statements"));
        }
    }
}

/// Parse exactly one statement (a trailing semicolon is allowed).
pub fn parse_statement(src: &str) -> Result<Statement> {
    let mut stmts = parse_sql(src)?;
    match stmts.len() {
        1 => Ok(stmts.pop().expect("len checked")),
        0 => Err(ParseError::new("empty statement", 1, 1)),
        n => Err(ParseError::new(format!("expected one statement, found {n}"), 1, 1)),
    }
}

/// The recursive-descent parser over a token stream.
pub struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    /// Number of `?` parameters seen so far (assigns appearance-order
    /// indices).
    param_count: usize,
}

impl Parser {
    /// Create a parser from lexed tokens (must end with `Token::Eof`).
    pub fn new(tokens: Vec<SpannedToken>) -> Parser {
        Parser { tokens, pos: 0, param_count: 0 }
    }

    // ---------------------------------------------------------- utilities

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].token
    }

    fn peek_at(&self, offset: usize) -> &Token {
        &self.tokens[(self.pos + offset).min(self.tokens.len() - 1)].token
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        (t.line, t.column)
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].token.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check_token(&self, t: &Token) -> bool {
        self.peek() == t
    }

    fn check_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), Token::Keyword(k) if *k == kw)
    }

    fn eat_token(&mut self, t: &Token) -> bool {
        if self.check_token(t) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: &Token) -> Result<()> {
        if self.eat_token(t) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("{t}")))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {kw:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.advance();
                Ok(name)
            }
            // Soft keywords: reserved only in structural positions that are
            // always introduced by another keyword, so they can double as
            // column names (`R.ordinality` after WITH ORDINALITY, etc.).
            Token::Keyword(
                kw @ (Keyword::Ordinality | Keyword::Key | Keyword::Index | Keyword::Graph),
            ) => {
                self.advance();
                Ok(format!("{kw:?}").to_ascii_lowercase())
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        let (line, column) = self.here();
        ParseError::new(format!("expected {expected}, found {}", self.peek()), line, column)
    }

    // --------------------------------------------------------- statements

    /// Parse one statement at the current position.
    pub fn parse_statement(&mut self) -> Result<Statement> {
        match self.peek().clone() {
            Token::Keyword(Keyword::Create) => self.parse_create(),
            Token::Keyword(Keyword::Drop) => self.parse_drop(),
            Token::Keyword(Keyword::Insert) => self.parse_insert(),
            Token::Keyword(Keyword::Delete) => self.parse_delete(),
            Token::Keyword(Keyword::Update) => self.parse_update(),
            Token::Keyword(Keyword::Explain) => {
                self.advance();
                // ANALYZE is contextual (not reserved): it only has meaning
                // directly after EXPLAIN, so `analyze` stays usable as an
                // ordinary identifier elsewhere.
                if matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case("analyze")) {
                    self.advance();
                    Ok(Statement::ExplainAnalyze(self.parse_query()?))
                } else {
                    Ok(Statement::Explain(self.parse_query()?))
                }
            }
            Token::Keyword(Keyword::Describe) => {
                self.advance();
                Ok(Statement::Describe { name: self.expect_ident()? })
            }
            Token::Keyword(Keyword::Set) => self.parse_set(),
            // SHOW is contextual: a bare identifier can only start a
            // statement here, so this never shadows other uses of `show`.
            Token::Ident(s) if s.eq_ignore_ascii_case("show") => self.parse_show(),
            // CHECKPOINT is contextual for the same reason — `checkpoint`
            // stays usable as a column or table name.
            Token::Ident(s) if s.eq_ignore_ascii_case("checkpoint") => {
                self.advance();
                Ok(Statement::Checkpoint)
            }
            Token::Keyword(Keyword::Select)
            | Token::Keyword(Keyword::With)
            | Token::Keyword(Keyword::Values)
            | Token::LParen => Ok(Statement::Query(self.parse_query()?)),
            _ => Err(self.unexpected("a statement")),
        }
    }

    /// True when the current token is the identifier `word`
    /// (case-insensitive). Soft keywords like PATH, WEIGHT, USING and
    /// LANDMARKS stay ordinary identifiers everywhere else (`path` and
    /// `weight` are common column names in the paper's queries).
    fn check_soft_kw(&self, word: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case(word))
    }

    fn expect_soft_kw(&mut self, word: &str) -> Result<()> {
        if self.check_soft_kw(word) {
            self.advance();
            Ok(())
        } else {
            Err(self.unexpected(&format!("'{}'", word.to_ascii_uppercase())))
        }
    }

    fn parse_create(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Create)?;
        if self.eat_kw(Keyword::Graph) {
            // CREATE GRAPH INDEX name ON table EDGE (src, dst)
            self.expect_kw(Keyword::Index)?;
            let name = self.expect_ident()?;
            self.expect_kw(Keyword::On)?;
            let table = self.expect_ident()?;
            self.expect_kw(Keyword::Edge)?;
            self.expect_token(&Token::LParen)?;
            let src_col = self.expect_ident()?;
            self.expect_token(&Token::Comma)?;
            let dst_col = self.expect_ident()?;
            self.expect_token(&Token::RParen)?;
            return Ok(Statement::CreateGraphIndex { name, table, src_col, dst_col });
        }
        // PATH is contextual: only `CREATE PATH INDEX` treats it specially,
        // so `path` keeps working as a table/column name.
        if self.check_soft_kw("path") && matches!(self.peek_at(1), Token::Keyword(Keyword::Index)) {
            return self.parse_create_path_index();
        }
        self.expect_kw(Keyword::Table)?;
        let name = self.expect_ident()?;
        self.expect_token(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.expect_ident()?;
            let ty = self.parse_type_name()?;
            let mut not_null = false;
            let mut primary_key = false;
            loop {
                if self.check_kw(Keyword::Not) {
                    self.advance();
                    self.expect_kw(Keyword::Null)?;
                    not_null = true;
                } else if self.check_kw(Keyword::Primary) {
                    self.advance();
                    self.expect_kw(Keyword::Key)?;
                    primary_key = true;
                    not_null = true;
                } else {
                    break;
                }
            }
            columns.push(ColumnDefAst { name: col_name, ty, not_null, primary_key });
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        self.expect_token(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    /// The tail of `CREATE PATH INDEX [IF NOT EXISTS] name ON table EDGE
    /// (src, dst) [WEIGHT col] USING {LANDMARKS(k) | CONTRACTION}` (PATH
    /// already peeked).
    fn parse_create_path_index(&mut self) -> Result<Statement> {
        self.advance(); // PATH
        self.expect_kw(Keyword::Index)?;
        // IF is contextual: `IF NOT` cannot start anything else here, so an
        // index actually named `if` keeps parsing (it is followed by ON).
        let if_not_exists = if self.check_soft_kw("if")
            && matches!(self.peek_at(1), Token::Keyword(Keyword::Not))
        {
            self.advance(); // IF
            self.expect_kw(Keyword::Not)?;
            self.expect_kw(Keyword::Exists)?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        self.expect_kw(Keyword::On)?;
        let table = self.expect_ident()?;
        self.expect_kw(Keyword::Edge)?;
        self.expect_token(&Token::LParen)?;
        let src_col = self.expect_ident()?;
        self.expect_token(&Token::Comma)?;
        let dst_col = self.expect_ident()?;
        self.expect_token(&Token::RParen)?;
        let weight_col = if self.check_soft_kw("weight") {
            self.advance(); // WEIGHT
            Some(self.expect_ident()?)
        } else {
            None
        };
        self.expect_soft_kw("using")?;
        let method = if self.check_soft_kw("landmarks") {
            self.advance(); // LANDMARKS
            self.expect_token(&Token::LParen)?;
            let landmarks = match self.peek().clone() {
                Token::Int(v) if v > 0 && v <= u32::MAX as i64 => {
                    self.advance();
                    v as u32
                }
                _ => return Err(self.unexpected("a positive landmark count")),
            };
            self.expect_token(&Token::RParen)?;
            PathIndexMethod::Landmarks(landmarks)
        } else if self.check_soft_kw("contraction") {
            self.advance(); // CONTRACTION
            PathIndexMethod::Contraction
        } else {
            return Err(self.unexpected("'LANDMARKS(k)' or 'CONTRACTION'"));
        };
        Ok(Statement::CreatePathIndex {
            name,
            table,
            src_col,
            dst_col,
            weight_col,
            method,
            if_not_exists,
        })
    }

    fn parse_drop(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Drop)?;
        if self.eat_kw(Keyword::Graph) {
            self.expect_kw(Keyword::Index)?;
            return Ok(Statement::DropGraphIndex { name: self.expect_ident()? });
        }
        if self.check_soft_kw("path") && matches!(self.peek_at(1), Token::Keyword(Keyword::Index)) {
            self.advance(); // PATH
            self.advance(); // INDEX
            let if_exists = if self.check_soft_kw("if")
                && matches!(self.peek_at(1), Token::Keyword(Keyword::Exists))
            {
                self.advance(); // IF
                self.advance(); // EXISTS
                true
            } else {
                false
            };
            return Ok(Statement::DropPathIndex { name: self.expect_ident()?, if_exists });
        }
        self.expect_kw(Keyword::Table)?;
        Ok(Statement::DropTable { name: self.expect_ident()? })
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.expect_ident()?;
        let mut columns = None;
        if self.check_token(&Token::LParen) {
            // Could be a column list or a parenthesized query; a column list
            // is `(ident, …)` followed by VALUES/SELECT.
            if matches!(self.peek_at(1), Token::Ident(_))
                && matches!(self.peek_at(2), Token::Comma | Token::RParen)
            {
                self.advance(); // (
                let mut cols = Vec::new();
                loop {
                    cols.push(self.expect_ident()?);
                    if !self.eat_token(&Token::Comma) {
                        break;
                    }
                }
                self.expect_token(&Token::RParen)?;
                columns = Some(cols);
            }
        }
        let source = self.parse_query()?;
        Ok(Statement::Insert { table, columns, source })
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.expect_ident()?;
        let filter = if self.eat_kw(Keyword::Where) { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Delete { table, filter })
    }

    fn parse_update(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Update)?;
        let table = self.expect_ident()?;
        self.expect_kw(Keyword::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_token(&Token::Eq)?;
            let value = self.parse_expr()?;
            assignments.push((col, value));
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw(Keyword::Where) { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Update { table, assignments, filter })
    }

    /// `SET <option> = <value>` where the value is a literal or a bare word
    /// (`on` / `off`).
    fn parse_set(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Set)?;
        let name = self.expect_ident()?;
        self.expect_token(&Token::Eq)?;
        let value = match self.peek().clone() {
            Token::Int(v) => {
                self.advance();
                SetValue::Literal(Literal::Int(v))
            }
            Token::Float(v) => {
                self.advance();
                SetValue::Literal(Literal::Float(v))
            }
            Token::String(s) => {
                self.advance();
                SetValue::Literal(Literal::String(s))
            }
            Token::Keyword(Keyword::True) => {
                self.advance();
                SetValue::Literal(Literal::Bool(true))
            }
            Token::Keyword(Keyword::False) => {
                self.advance();
                SetValue::Literal(Literal::Bool(false))
            }
            Token::Keyword(Keyword::On) => {
                // ON is reserved (joins), but natural as a setting value.
                self.advance();
                SetValue::Ident("on".to_string())
            }
            Token::Ident(_) => SetValue::Ident(self.expect_ident()?),
            _ => return Err(self.unexpected("a literal or identifier after '='")),
        };
        Ok(Statement::Set { name, value })
    }

    /// `SHOW <option>` or `SHOW ALL` (the SHOW word is already peeked).
    fn parse_show(&mut self) -> Result<Statement> {
        self.advance(); // the SHOW identifier
        if self.eat_kw(Keyword::All) {
            return Ok(Statement::Show { name: None });
        }
        // SHOW PATH INDEXES lists the path-index registry; a plain
        // `SHOW path` (no such setting exists) still parses as Show.
        if self.check_soft_kw("path")
            && matches!(self.peek_at(1), Token::Ident(s) if s.eq_ignore_ascii_case("indexes"))
        {
            self.advance(); // PATH
            self.advance(); // INDEXES
            return Ok(Statement::ShowPathIndexes);
        }
        Ok(Statement::Show { name: Some(self.expect_ident()?) })
    }

    // ------------------------------------------------------------ queries

    /// Parse a full query: `[WITH …] body [ORDER BY …] [LIMIT …] [OFFSET …]`.
    pub fn parse_query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.eat_kw(Keyword::With) {
            loop {
                let name = self.expect_ident()?;
                let columns = if self.check_token(&Token::LParen) {
                    self.advance();
                    let mut cols = Vec::new();
                    loop {
                        cols.push(self.expect_ident()?);
                        if !self.eat_token(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect_token(&Token::RParen)?;
                    Some(cols)
                } else {
                    None
                };
                self.expect_kw(Keyword::As)?;
                self.expect_token(&Token::LParen)?;
                let query = self.parse_query()?;
                self.expect_token(&Token::RParen)?;
                ctes.push(Cte { name, columns, query });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.eat_kw(Keyword::Desc) {
                    false
                } else {
                    self.eat_kw(Keyword::Asc);
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Keyword::Limit) { Some(self.parse_expr()?) } else { None };
        let offset = if self.eat_kw(Keyword::Offset) { Some(self.parse_expr()?) } else { None };
        Ok(Query { ctes, body, order_by, limit, offset })
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_primary()?;
        while self.check_kw(Keyword::Union) {
            self.advance();
            let all = self.eat_kw(Keyword::All);
            let right = self.parse_set_primary()?;
            left = SetExpr::Union { left: Box::new(left), right: Box::new(right), all };
        }
        Ok(left)
    }

    fn parse_set_primary(&mut self) -> Result<SetExpr> {
        if self.check_token(&Token::LParen) {
            self.advance();
            let inner = self.parse_set_expr()?;
            self.expect_token(&Token::RParen)?;
            return Ok(inner);
        }
        if self.eat_kw(Keyword::Values) {
            let mut rows = Vec::new();
            loop {
                self.expect_token(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_token(&Token::Comma) {
                        break;
                    }
                }
                self.expect_token(&Token::RParen)?;
                rows.push(row);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            return Ok(SetExpr::Values(rows));
        }
        Ok(SetExpr::Select(Box::new(self.parse_select()?)))
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw(Keyword::Select)?;
        let distinct = if self.eat_kw(Keyword::Distinct) {
            true
        } else {
            self.eat_kw(Keyword::All);
            false
        };
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        // FROM is optional: appendix A.1 queries have only SELECT + WHERE.
        let mut from = Vec::new();
        if self.eat_kw(Keyword::From) {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let where_clause =
            if self.eat_kw(Keyword::Where) { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw(Keyword::Having) { Some(self.parse_expr()?) } else { None };
        Ok(Select { distinct, items, from, where_clause, group_by, having })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_token(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // t.*
        if matches!(self.peek(), Token::Ident(_))
            && *self.peek_at(1) == Token::Dot
            && *self.peek_at(2) == Token::Star
        {
            let table = self.expect_ident()?;
            self.advance(); // .
            self.advance(); // *
            return Ok(SelectItem::QualifiedWildcard(table));
        }
        if self.check_kw(Keyword::Cheapest) {
            return self.parse_cheapest_sum();
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    /// `CHEAPEST SUM([e:] weight) [AS cost | AS (cost, path)]`
    fn parse_cheapest_sum(&mut self) -> Result<SelectItem> {
        self.expect_kw(Keyword::Cheapest)?;
        match self.peek().clone() {
            Token::Ident(s) if s.eq_ignore_ascii_case("sum") => {
                self.advance();
            }
            _ => return Err(self.unexpected("SUM after CHEAPEST")),
        }
        self.expect_token(&Token::LParen)?;
        // Optional `binding :` prefix — only when an identifier is directly
        // followed by a colon.
        let binding = if matches!(self.peek(), Token::Ident(_)) && *self.peek_at(1) == Token::Colon
        {
            let b = self.expect_ident()?;
            self.advance(); // :
            Some(b)
        } else {
            None
        };
        let weight = self.parse_expr()?;
        self.expect_token(&Token::RParen)?;
        let aliases = if self.eat_kw(Keyword::As) {
            if self.eat_token(&Token::LParen) {
                let cost = self.expect_ident()?;
                self.expect_token(&Token::Comma)?;
                let path = self.expect_ident()?;
                self.expect_token(&Token::RParen)?;
                CheapestAlias::CostAndPath(cost, path)
            } else {
                CheapestAlias::Cost(self.expect_ident()?)
            }
        } else {
            CheapestAlias::None
        };
        Ok(SelectItem::CheapestSum { binding, weight, aliases })
    }

    fn parse_optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw(Keyword::As) {
            return Ok(Some(self.expect_ident()?));
        }
        if matches!(self.peek(), Token::Ident(_)) {
            return Ok(Some(self.expect_ident()?));
        }
        Ok(None)
    }

    // -------------------------------------------------------- table refs

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.check_kw(Keyword::Join) || self.check_kw(Keyword::Inner) {
                self.eat_kw(Keyword::Inner);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Inner
            } else if self.check_kw(Keyword::Left) {
                self.advance();
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::LeftOuter
            } else if self.check_kw(Keyword::Cross) {
                self.advance();
                self.expect_kw(Keyword::Join)?;
                JoinKind::Cross
            } else {
                return Ok(left);
            };
            let right = self.parse_table_primary()?;
            let on = if kind == JoinKind::Cross {
                None
            } else if self.eat_kw(Keyword::On) {
                Some(self.parse_expr()?)
            } else if matches!(right, TableRef::Unnest { .. }) {
                // Lateral unnest joins may omit ON (implicitly ON TRUE).
                None
            } else {
                return Err(self.unexpected("ON after JOIN"));
            };
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        if self.check_kw(Keyword::Unnest) {
            return self.parse_unnest();
        }
        if self.check_token(&Token::LParen) {
            self.advance();
            let query = self.parse_query()?;
            self.expect_token(&Token::RParen)?;
            let alias = self
                .parse_optional_alias()?
                .ok_or_else(|| self.unexpected("an alias for the derived table"))?;
            return Ok(TableRef::Derived { query: Box::new(query), alias });
        }
        let name = self.expect_ident()?;
        let alias = self.parse_optional_alias()?;
        Ok(TableRef::Base { name, alias })
    }

    fn parse_unnest(&mut self) -> Result<TableRef> {
        self.expect_kw(Keyword::Unnest)?;
        self.expect_token(&Token::LParen)?;
        let expr = self.parse_expr()?;
        self.expect_token(&Token::RParen)?;
        let with_ordinality = if self.check_kw(Keyword::With) {
            self.advance();
            self.expect_kw(Keyword::Ordinality)?;
            true
        } else {
            false
        };
        let alias = self.parse_optional_alias()?;
        let column_aliases = if alias.is_some() && self.check_token(&Token::LParen) {
            self.advance();
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        Ok(TableRef::Unnest { expr, with_ordinality, alias, column_aliases })
    }

    // -------------------------------------------------------- expressions

    /// Parse an expression (entry point: lowest precedence).
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::Or, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw(Keyword::Not) {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // Simple binary comparisons.
        let op = match self.peek() {
            Token::Eq => Some(BinaryOp::Eq),
            Token::NotEq => Some(BinaryOp::NotEq),
            Token::Lt => Some(BinaryOp::Lt),
            Token::LtEq => Some(BinaryOp::LtEq),
            Token::Gt => Some(BinaryOp::Gt),
            Token::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::Binary { left: Box::new(left), op, right: Box::new(right) });
        }
        // IS [NOT] NULL
        if self.check_kw(Keyword::Is) {
            self.advance();
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] IN / BETWEEN / LIKE, and REACHES
        let negated = self.eat_kw(Keyword::Not);
        if self.eat_kw(Keyword::In) {
            self.expect_token(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(Keyword::Like) {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if self.check_kw(Keyword::Reaches) {
            if negated {
                return Err(self.unexpected(
                    "REACHES cannot be negated with NOT directly; \
                                            wrap it: NOT (x REACHES y OVER …)",
                ));
            }
            self.advance();
            return self.parse_reaches_tail(left);
        }
        if negated {
            return Err(self.unexpected("IN, BETWEEN or LIKE after NOT"));
        }
        Ok(left)
    }

    /// Parse the remainder of `left REACHES dest OVER edge [alias] EDGE (s, d)`.
    fn parse_reaches_tail(&mut self, source: Expr) -> Result<Expr> {
        let dest = self.parse_additive()?;
        self.expect_kw(Keyword::Over)?;
        // The edge table: a base name (table or CTE) or a derived table.
        let edge_table = if self.check_token(&Token::LParen) {
            self.advance();
            let query = self.parse_query()?;
            self.expect_token(&Token::RParen)?;
            // The tuple-variable alias (if any) is parsed below and doubles
            // as the derived table's name.
            TableRef::Derived { query: Box::new(query), alias: String::new() }
        } else {
            TableRef::Base { name: self.expect_ident()?, alias: None }
        };
        // Optional tuple variable, e.g. `OVER friends1 f EDGE (…)`. EDGE is
        // a keyword, so an identifier here is unambiguous.
        let alias =
            if matches!(self.peek(), Token::Ident(_)) { Some(self.expect_ident()?) } else { None };
        let edge_table = match edge_table {
            TableRef::Derived { query, .. } => {
                let name = alias
                    .clone()
                    .ok_or_else(|| self.unexpected("an alias for the derived edge table"))?;
                TableRef::Derived { query, alias: name }
            }
            other => other,
        };
        self.expect_kw(Keyword::Edge)?;
        self.expect_token(&Token::LParen)?;
        let src_col = self.expect_ident()?;
        self.expect_token(&Token::Comma)?;
        let dst_col = self.expect_ident()?;
        self.expect_token(&Token::RParen)?;
        Ok(Expr::Reaches(Box::new(ReachesPredicate {
            source,
            dest,
            edge_table,
            alias,
            src_col,
            dst_col,
        })))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Add,
                Token::Minus => BinaryOp::Sub,
                Token::Concat => BinaryOp::Concat,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                Token::Percent => BinaryOp::Mod,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_token(&Token::Minus) {
            let inner = self.parse_unary()?;
            // Fold negation into numeric literals so `-5` is a literal (and
            // `i64::MIN` is representable), not a unary expression.
            return Ok(match inner {
                Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        if self.eat_token(&Token::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Int(v)))
            }
            Token::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            Token::String(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            Token::Question => {
                self.advance();
                let idx = self.param_count;
                self.param_count += 1;
                Ok(Expr::Param(idx))
            }
            Token::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            Token::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            Token::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            Token::Keyword(Keyword::Date) => {
                // DATE 'YYYY-MM-DD' literal.
                self.advance();
                match self.peek().clone() {
                    Token::String(s) => {
                        self.advance();
                        Ok(Expr::Literal(Literal::Date(s)))
                    }
                    _ => Err(self.unexpected("a string literal after DATE")),
                }
            }
            Token::Keyword(Keyword::Cast) => {
                self.advance();
                self.expect_token(&Token::LParen)?;
                let expr = self.parse_expr()?;
                self.expect_kw(Keyword::As)?;
                let ty = self.parse_type_name()?;
                self.expect_token(&Token::RParen)?;
                Ok(Expr::Cast { expr: Box::new(expr), ty })
            }
            Token::Keyword(Keyword::Case) => self.parse_case(),
            Token::LParen => {
                self.advance();
                let inner = self.parse_expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(inner)
            }
            Token::Ident(name) => {
                self.advance();
                // Function call?
                if self.check_token(&Token::LParen) {
                    self.advance();
                    let mut distinct = false;
                    let mut args = Vec::new();
                    if self.eat_token(&Token::Star) {
                        // COUNT(*) — zero-argument encoding.
                        self.expect_token(&Token::RParen)?;
                        return Ok(Expr::Function { name, args, distinct });
                    }
                    if !self.check_token(&Token::RParen) {
                        distinct = self.eat_kw(Keyword::Distinct);
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_token(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_token(&Token::RParen)?;
                    return Ok(Expr::Function { name, args, distinct });
                }
                // Qualified column?
                if self.check_token(&Token::Dot) {
                    self.advance();
                    let col = self.expect_ident()?;
                    return Ok(Expr::Column { table: Some(name), name: col });
                }
                Ok(Expr::Column { table: None, name })
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_kw(Keyword::Case)?;
        let operand =
            if self.check_kw(Keyword::When) { None } else { Some(Box::new(self.parse_expr()?)) };
        let mut branches = Vec::new();
        while self.eat_kw(Keyword::When) {
            let when = self.parse_expr()?;
            self.expect_kw(Keyword::Then)?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.unexpected("WHEN in CASE expression"));
        }
        let else_expr =
            if self.eat_kw(Keyword::Else) { Some(Box::new(self.parse_expr()?)) } else { None };
        self.expect_kw(Keyword::End)?;
        Ok(Expr::Case { operand, branches, else_expr })
    }

    fn parse_type_name(&mut self) -> Result<TypeName> {
        let ty = match self.peek() {
            Token::Keyword(Keyword::Integer)
            | Token::Keyword(Keyword::Int)
            | Token::Keyword(Keyword::Bigint) => TypeName::Integer,
            Token::Keyword(Keyword::Double) | Token::Keyword(Keyword::Float) => TypeName::Double,
            Token::Keyword(Keyword::Varchar) | Token::Keyword(Keyword::Text) => TypeName::Varchar,
            Token::Keyword(Keyword::Boolean) => TypeName::Boolean,
            Token::Keyword(Keyword::Date) => TypeName::Date,
            _ => return Err(self.unexpected("a type name")),
        };
        self.advance();
        // Optional and ignored length, e.g. VARCHAR(40).
        if ty == TypeName::Varchar && self.eat_token(&Token::LParen) {
            match self.advance() {
                Token::Int(_) => {}
                _ => return Err(self.unexpected("a length")),
            }
            self.expect_token(&Token::RParen)?;
        }
        // DOUBLE PRECISION
        if ty == TypeName::Double {
            if let Token::Ident(s) = self.peek() {
                if s.eq_ignore_ascii_case("precision") {
                    self.advance();
                }
            }
        }
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> Query {
        match parse_statement(src).unwrap() {
            Statement::Query(q) => q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    fn select(src: &str) -> Select {
        match q(src).body {
            SetExpr::Select(s) => *s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_simple_select() {
        let s = select("SELECT a, b AS bee FROM t WHERE a > 1");
        assert_eq!(s.items.len(), 2);
        assert!(matches!(&s.items[1], SelectItem::Expr { alias: Some(a), .. } if a == "bee"));
        assert_eq!(s.from.len(), 1);
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parses_paper_query_a1() {
        // Appendix A.1: no FROM clause, two parameters.
        let s = select("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)");
        assert!(s.from.is_empty());
        assert!(matches!(
            &s.items[0],
            SelectItem::CheapestSum { binding: None, aliases: CheapestAlias::None, .. }
        ));
        match s.where_clause.unwrap() {
            Expr::Reaches(r) => {
                assert_eq!(r.source, Expr::Param(0));
                assert_eq!(r.dest, Expr::Param(1));
                assert_eq!(r.src_col, "src");
                assert_eq!(r.dst_col, "dst");
                assert!(matches!(&r.edge_table, TableRef::Base { name, .. } if name == "friends"));
            }
            other => panic!("expected REACHES, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_query_a2() {
        let s = select(
            "SELECT p1.firstName || ' ' || p1.lastName AS person1, \
                    p2.firstName || ' ' || p2.lastName AS person2, \
                    CHEAPEST SUM(1) AS distance \
             FROM persons p1, persons p2 \
             WHERE p1.id = ? AND p2.id = ? \
               AND p1.id REACHES p2.id OVER friends EDGE (src, dst)",
        );
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.from.len(), 2);
        assert!(matches!(
            &s.items[2],
            SelectItem::CheapestSum { aliases: CheapestAlias::Cost(c), .. } if c == "distance"
        ));
    }

    #[test]
    fn parses_paper_query_a4_with_cte_binding_and_two_aliases() {
        let query =
            q("WITH friends1 AS (SELECT * FROM friends WHERE creationDate < '2011-01-01') \
             SELECT firstName || ' ' || lastName AS person, \
                    CHEAPEST SUM(f: CAST(weight * 2 AS int)) AS (cost, path) \
             FROM persons \
             WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)");
        assert_eq!(query.ctes.len(), 1);
        assert_eq!(query.ctes[0].name, "friends1");
        let s = match query.body {
            SetExpr::Select(s) => *s,
            other => panic!("{other:?}"),
        };
        match &s.items[1] {
            SelectItem::CheapestSum { binding, weight, aliases } => {
                assert_eq!(binding.as_deref(), Some("f"));
                assert!(matches!(weight, Expr::Cast { .. }));
                assert!(matches!(aliases,
                    CheapestAlias::CostAndPath(c, p) if c == "cost" && p == "path"));
            }
            other => panic!("expected CHEAPEST SUM, got {other:?}"),
        }
        match s.where_clause.unwrap() {
            Expr::Reaches(r) => {
                assert_eq!(r.alias.as_deref(), Some("f"));
                assert!(matches!(&r.edge_table, TableRef::Base { name, .. } if name == "friends1"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_unnest_lateral() {
        let s = select(
            "SELECT T.X, T.cost, R.S, R.D \
             FROM (SELECT 1 AS X) T, UNNEST(T.path) AS R",
        );
        assert_eq!(s.from.len(), 2);
        assert!(matches!(&s.from[0], TableRef::Derived { alias, .. } if alias == "T"));
        match &s.from[1] {
            TableRef::Unnest { with_ordinality, alias, .. } => {
                assert!(!with_ordinality);
                assert_eq!(alias.as_deref(), Some("R"));
            }
            other => panic!("expected UNNEST, got {other:?}"),
        }
    }

    #[test]
    fn parses_unnest_with_ordinality_and_left_join() {
        let s = select("SELECT * FROM t LEFT JOIN UNNEST(t.path) WITH ORDINALITY AS r (s, d, pos)");
        match &s.from[0] {
            TableRef::Join { kind: JoinKind::LeftOuter, right, on: None, .. } => {
                match right.as_ref() {
                    TableRef::Unnest { with_ordinality, column_aliases, .. } => {
                        assert!(*with_ordinality);
                        assert_eq!(
                            column_aliases.as_ref().unwrap(),
                            &vec!["s".to_string(), "d".to_string(), "pos".to_string()]
                        );
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_ddl() {
        let stmt = parse_statement(
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name VARCHAR(40) NOT NULL, \
             weight DOUBLE, created DATE, ok BOOLEAN)",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "persons");
                assert_eq!(columns.len(), 5);
                assert!(columns[0].primary_key && columns[0].not_null);
                assert!(columns[1].not_null && !columns[1].primary_key);
                assert_eq!(columns[2].ty, TypeName::Double);
                assert_eq!(columns[3].ty, TypeName::Date);
                assert_eq!(columns[4].ty, TypeName::Boolean);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_insert_values_and_select() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Statement::Insert { table, columns, source } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a".to_string(), "b".to_string()]);
                assert!(matches!(source.body, SetExpr::Values(rows) if rows.len() == 2));
            }
            other => panic!("{other:?}"),
        }
        let stmt = parse_statement("INSERT INTO t SELECT * FROM s").unwrap();
        assert!(matches!(stmt, Statement::Insert { columns: None, .. }));
    }

    #[test]
    fn parses_delete_update() {
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete { filter: Some(_), .. }
        ));
        match parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE c").unwrap() {
            Statement::Update { assignments, filter, .. } => {
                assert_eq!(assignments.len(), 2);
                assert!(filter.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_graph_index_ddl() {
        match parse_statement("CREATE GRAPH INDEX gi ON friends EDGE (src, dst)").unwrap() {
            Statement::CreateGraphIndex { name, table, src_col, dst_col } => {
                assert_eq!((name.as_str(), table.as_str()), ("gi", "friends"));
                assert_eq!((src_col.as_str(), dst_col.as_str()), ("src", "dst"));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("DROP GRAPH INDEX gi").unwrap(),
            Statement::DropGraphIndex { .. }
        ));
    }

    #[test]
    fn parses_path_index_ddl() {
        match parse_statement(
            "CREATE PATH INDEX pi ON roads EDGE (a, b) WEIGHT len USING LANDMARKS(16)",
        )
        .unwrap()
        {
            Statement::CreatePathIndex {
                name,
                table,
                src_col,
                dst_col,
                weight_col,
                method,
                if_not_exists,
            } => {
                assert_eq!((name.as_str(), table.as_str()), ("pi", "roads"));
                assert_eq!((src_col.as_str(), dst_col.as_str()), ("a", "b"));
                assert_eq!(weight_col.as_deref(), Some("len"));
                assert_eq!(method, PathIndexMethod::Landmarks(16));
                assert!(!if_not_exists);
            }
            other => panic!("{other:?}"),
        }
        // Unweighted (hop-distance) form.
        match parse_statement("CREATE PATH INDEX pi ON e EDGE (s, d) USING LANDMARKS(4)").unwrap() {
            Statement::CreatePathIndex {
                weight_col: None,
                method: PathIndexMethod::Landmarks(4),
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("DROP PATH INDEX pi").unwrap(),
            Statement::DropPathIndex { name, if_exists: false } if name == "pi"
        ));
        // Landmark count must be a positive integer; USING is mandatory.
        assert!(parse_statement("CREATE PATH INDEX p ON e EDGE (s, d) USING LANDMARKS(0)").is_err());
        assert!(
            parse_statement("CREATE PATH INDEX p ON e EDGE (s, d) USING LANDMARKS(-1)").is_err()
        );
        assert!(parse_statement("CREATE PATH INDEX p ON e EDGE (s, d)").is_err());
        assert!(parse_statement("CREATE PATH INDEX p ON e EDGE (s, d) LANDMARKS(2)").is_err());
        assert!(parse_statement("CREATE PATH INDEX p ON e EDGE (s, d) USING nonsense").is_err());
    }

    #[test]
    fn parses_contraction_and_if_exists_forms() {
        match parse_statement(
            "CREATE PATH INDEX IF NOT EXISTS ci ON e EDGE (s, d) WEIGHT w USING CONTRACTION",
        )
        .unwrap()
        {
            Statement::CreatePathIndex { name, method, if_not_exists, weight_col, .. } => {
                assert_eq!(name, "ci");
                assert_eq!(method, PathIndexMethod::Contraction);
                assert!(if_not_exists);
                assert_eq!(weight_col.as_deref(), Some("w"));
            }
            other => panic!("{other:?}"),
        }
        // CONTRACTION takes no parameter list.
        assert!(
            parse_statement("CREATE PATH INDEX p ON e EDGE (s, d) USING CONTRACTION(2)").is_err()
        );
        assert!(matches!(
            parse_statement("DROP PATH INDEX IF EXISTS ci").unwrap(),
            Statement::DropPathIndex { name, if_exists: true } if name == "ci"
        ));
        // An index actually named `if` still parses (IF only triggers with
        // a following NOT/EXISTS keyword).
        assert!(matches!(
            parse_statement("CREATE PATH INDEX if ON e EDGE (s, d) USING CONTRACTION").unwrap(),
            Statement::CreatePathIndex { name, if_not_exists: false, .. } if name == "if"
        ));
        assert!(matches!(
            parse_statement("DROP PATH INDEX if").unwrap(),
            Statement::DropPathIndex { name, if_exists: false } if name == "if"
        ));
    }

    #[test]
    fn parses_show_path_indexes() {
        assert!(matches!(
            parse_statement("SHOW PATH INDEXES").unwrap(),
            Statement::ShowPathIndexes
        ));
        assert!(matches!(
            parse_statement("show path indexes").unwrap(),
            Statement::ShowPathIndexes
        ));
        // A bare SHOW of some other name keeps the settings form.
        assert!(matches!(
            parse_statement("SHOW threads").unwrap(),
            Statement::Show { name: Some(n) } if n == "threads"
        ));
    }

    #[test]
    fn path_stays_usable_as_identifier() {
        // PATH, WEIGHT, USING and LANDMARKS are contextual: existing
        // queries and schemas using them as names keep parsing.
        assert!(parse_statement("SELECT path FROM t").is_ok());
        assert!(parse_statement("SELECT T.path, weight FROM T").is_ok());
        assert!(parse_statement("CREATE TABLE path (weight INTEGER, using INTEGER)").is_ok());
        assert!(parse_statement("SELECT landmarks FROM using").is_ok());
        assert!(parse_statement("UPDATE path SET weight = 1").is_ok());
        assert!(parse_statement("DROP TABLE path").is_ok());
        assert!(parse_statement(
            "SELECT CHEAPEST SUM(1) AS (cost, path) WHERE 1 REACHES 2 OVER e EDGE (s, d)"
        )
        .is_ok());
    }

    #[test]
    fn precedence_and_parentheses() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        match select("SELECT 1 + 2 * 3").items.pop().unwrap() {
            SelectItem::Expr { expr: Expr::Binary { op: BinaryOp::Add, right, .. }, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinaryOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
        // AND binds tighter than OR.
        match select("SELECT * WHERE a OR b AND c").where_clause.unwrap() {
            Expr::Binary { op: BinaryOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_group_order_limit() {
        let query = q("SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 1 \
                       ORDER BY n DESC, a LIMIT 10 OFFSET 5");
        assert_eq!(query.order_by.len(), 2);
        assert!(!query.order_by[0].asc);
        assert!(query.order_by[1].asc);
        assert!(query.limit.is_some());
        assert!(query.offset.is_some());
        let s = match query.body {
            SetExpr::Select(s) => *s,
            other => panic!("{other:?}"),
        };
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn parses_union_all() {
        let query = q("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3");
        // Left-associative: (1 UNION ALL 2) UNION 3.
        match query.body {
            SetExpr::Union { all: false, left, .. } => {
                assert!(matches!(*left, SetExpr::Union { all: true, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_case_cast_between_like_in() {
        let s = select(
            "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END, \
                    CAST(a AS DOUBLE), \
                    CASE a WHEN 1 THEN 'one' END \
             FROM t \
             WHERE a BETWEEN 1 AND 5 AND name LIKE 'A%' AND b NOT IN (1, 2)",
        );
        assert_eq!(s.items.len(), 3);
        let w = s.where_clause.unwrap();
        let mut found_between = false;
        let mut found_like = false;
        let mut found_in = false;
        w.visit(&mut |e| match e {
            Expr::Between { .. } => found_between = true,
            Expr::Like { .. } => found_like = true,
            Expr::InList { negated: true, .. } => found_in = true,
            _ => {}
        });
        assert!(found_between && found_like && found_in);
    }

    #[test]
    fn parses_reaches_over_derived_table() {
        let s = select(
            "SELECT * FROM v WHERE v.a REACHES v.b OVER \
             (SELECT s, d FROM e WHERE w > 0) sub EDGE (s, d)",
        );
        match s.where_clause.unwrap() {
            Expr::Reaches(r) => {
                assert!(matches!(&r.edge_table, TableRef::Derived { alias, .. } if alias == "sub"));
                assert_eq!(r.alias.as_deref(), Some("sub"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = parse_statement("SELECT FROM").unwrap_err();
        assert!(err.line >= 1 && err.column > 1);
        assert!(parse_statement("SELECT 1 WHERE a NOT REACHES b OVER t EDGE (s,d)").is_err());
        assert!(parse_statement("CHEAPEST").is_err());
    }

    #[test]
    fn parses_multiple_statements() {
        let stmts = parse_sql("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
            .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn parameters_are_numbered_in_order() {
        let s = select("SELECT ? WHERE ? REACHES ? OVER t EDGE (s, d)");
        assert!(matches!(&s.items[0], SelectItem::Expr { expr: Expr::Param(0), .. }));
        match s.where_clause.unwrap() {
            Expr::Reaches(r) => {
                assert_eq!(r.source, Expr::Param(1));
                assert_eq!(r.dest, Expr::Param(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn date_literal() {
        let s = select("SELECT DATE '2011-01-01'");
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr { expr: Expr::Literal(Literal::Date(d)), .. } if d == "2011-01-01"
        ));
    }

    #[test]
    fn explain_and_describe() {
        assert!(matches!(parse_statement("EXPLAIN SELECT 1").unwrap(), Statement::Explain(_)));
        assert!(matches!(
            parse_statement("EXPLAIN ANALYZE SELECT 1").unwrap(),
            Statement::ExplainAnalyze(_)
        ));
        assert!(matches!(
            parse_statement("DESCRIBE persons").unwrap(),
            Statement::Describe { name } if name == "persons"
        ));
    }

    #[test]
    fn parses_set_and_show() {
        match parse_statement("SET graph_index = off").unwrap() {
            Statement::Set { name, value } => {
                assert_eq!(name, "graph_index");
                assert_eq!(value, SetValue::Ident("off".to_string()));
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("SET graph_index = on").unwrap() {
            Statement::Set { value, .. } => {
                assert_eq!(value, SetValue::Ident("on".to_string()));
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("SET row_limit = 100").unwrap() {
            Statement::Set { name, value } => {
                assert_eq!(name, "row_limit");
                assert_eq!(value, SetValue::Literal(Literal::Int(100)));
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("SET stats = TRUE").unwrap() {
            Statement::Set { value, .. } => {
                assert_eq!(value, SetValue::Literal(Literal::Bool(true)));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("SHOW row_limit").unwrap(),
            Statement::Show { name: Some(n) } if n == "row_limit"
        ));
        assert!(matches!(parse_statement("SHOW ALL").unwrap(), Statement::Show { name: None }));
        assert!(parse_statement("SET graph_index").is_err());
        assert!(parse_statement("SET = 1").is_err());
        assert!(parse_statement("SHOW").is_err());
    }

    #[test]
    fn show_and_analyze_stay_usable_as_identifiers() {
        // SHOW and ANALYZE are contextual, not reserved: pre-existing
        // schemas and queries using them as names keep parsing.
        assert!(parse_statement("SELECT analyze FROM t").is_ok());
        assert!(parse_statement("SELECT a AS analyze FROM t").is_ok());
        assert!(parse_statement("CREATE TABLE t (show INTEGER, analyze INTEGER)").is_ok());
        assert!(parse_statement("SELECT show FROM analyze").is_ok());
        assert!(parse_statement("UPDATE show SET analyze = 1").is_ok());
    }

    #[test]
    fn checkpoint_statement_and_identifier_use() {
        assert!(matches!(parse_statement("CHECKPOINT").unwrap(), Statement::Checkpoint));
        assert!(matches!(parse_statement("checkpoint").unwrap(), Statement::Checkpoint));
        assert_eq!(parse_statement("CHECKPOINT").unwrap().to_string(), "CHECKPOINT");
        // Like SHOW, CHECKPOINT is contextual — it stays usable as a name.
        assert!(parse_statement("SELECT checkpoint FROM t").is_ok());
        assert!(parse_statement("CREATE TABLE checkpoint (checkpoint INTEGER)").is_ok());
        // Trailing tokens after the bare statement are rejected.
        assert!(parse_statement("CHECKPOINT now").is_err());
    }

    #[test]
    fn count_star_is_zero_arg_function() {
        let s = select("SELECT COUNT(*) FROM t");
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr { expr: Expr::Function { name, args, .. }, .. }
                if name == "COUNT" && args.is_empty()
        ));
    }

    #[test]
    fn join_syntax_variants() {
        let s = select(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y CROSS JOIN d",
        );
        // Nested: ((a JOIN b) LEFT JOIN c) CROSS JOIN d.
        match &s.from[0] {
            TableRef::Join { kind: JoinKind::Cross, left, .. } => match left.as_ref() {
                TableRef::Join { kind: JoinKind::LeftOuter, left, .. } => {
                    assert!(matches!(left.as_ref(), TableRef::Join { kind: JoinKind::Inner, .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
