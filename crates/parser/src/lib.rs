//! # gsql-parser
//!
//! SQL lexer and recursive-descent parser for the `gsql` engine, covering a
//! practical SQL subset **plus the language extension of the paper**
//! (*Extending SQL for Computing Shortest Paths*, De Leo & Boncz, GRADES'17):
//!
//! * the reachability predicate
//!   `X REACHES Y OVER edge_table [alias] EDGE (S, D)` in `WHERE`;
//! * the shortest-path summary function
//!   `CHEAPEST SUM([e:] expr) [AS cost | AS (cost, path)]` in the
//!   projection list;
//! * `UNNEST(expr) [WITH ORDINALITY]` as a lateral `FROM` item for
//!   flattening nested-table paths.
//!
//! As in the paper (§3.1), `CHEAPEST`, `REACHES`, `EDGE` and `UNNEST` are
//! keywords.
//!
//! The crate is standalone: it produces an [`ast`] that the `gsql-core`
//! binder consumes, with no dependency on the storage layer.

pub mod ast;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::*;
pub use error::ParseError;
pub use lexer::Lexer;
pub use parser::{parse_sql, parse_statement, Parser};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ParseError>;
