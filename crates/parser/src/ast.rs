//! Abstract syntax tree for the supported SQL dialect.

/// A type name as written in DDL or `CAST`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    /// `INTEGER` / `INT` / `BIGINT`
    Integer,
    /// `DOUBLE` / `FLOAT`
    Double,
    /// `VARCHAR` / `TEXT`
    Varchar,
    /// `BOOLEAN`
    Boolean,
    /// `DATE`
    Date,
}

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `NULL`
    Null,
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal.
    String(String),
    /// `TRUE` / `FALSE`
    Bool(bool),
    /// `DATE 'YYYY-MM-DD'`
    Date(String),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||`
    Concat,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// The paper's reachability predicate:
/// `source REACHES dest OVER edge_table [alias] EDGE (src_col, dst_col)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReachesPredicate {
    /// The `X` expression (source vertices).
    pub source: Expr,
    /// The `Y` expression (destination vertices).
    pub dest: Expr,
    /// The edge table expression (base table, CTE name, or derived table).
    pub edge_table: TableRef,
    /// The tuple variable `e` that `CHEAPEST SUM(e: …)` binds to.
    pub alias: Option<String>,
    /// Source attribute `S` of the edge table.
    pub src_col: String,
    /// Destination attribute `D` of the edge table.
    pub dst_col: String,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Literal),
    /// Column reference, optionally qualified: `t.c` or `c`.
    Column {
        /// Optional table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// `?` host parameter; the index is the 0-based appearance order.
    Param(usize),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (list)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern with `%` and `_` wildcards.
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`
    Case {
        /// Optional comparand (simple CASE).
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` pairs.
        branches: Vec<(Expr, Expr)>,
        /// Optional ELSE.
        else_expr: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`
    Cast {
        /// Source expression.
        expr: Box<Expr>,
        /// Target type.
        ty: TypeName,
    },
    /// Function call (scalar or aggregate; resolved by the binder).
    Function {
        /// Function name (case-insensitive).
        name: String,
        /// Arguments; `COUNT(*)` is encoded as zero arguments.
        args: Vec<Expr>,
        /// True for `agg(DISTINCT x)`.
        distinct: bool,
    },
    /// The paper's reachability predicate (only valid inside `WHERE`).
    Reaches(Box<ReachesPredicate>),
}

/// `CHEAPEST SUM` result aliases.
#[derive(Debug, Clone, PartialEq)]
pub enum CheapestAlias {
    /// No alias: one anonymous cost column.
    None,
    /// `AS cost`: one named cost column.
    Cost(String),
    /// `AS (cost, path)`: cost column plus nested-table path column
    /// (the paper's "aliasing format AS (identifier_list)", §3.1).
    CostAndPath(String, String),
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional `AS alias`.
        alias: Option<String>,
    },
    /// `CHEAPEST SUM([e:] weight_expr) [AS …]` — the paper's shortest-path
    /// summary function (§2).
    CheapestSum {
        /// The tuple variable binding it to a `REACHES` edge table, when
        /// multiple reachability predicates are present.
        binding: Option<String>,
        /// The per-edge weight expression (`1` for unweighted).
        weight: Expr,
        /// Output aliases.
        aliases: CheapestAlias,
    },
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN … ON`
    Inner,
    /// `LEFT [OUTER] JOIN … ON`
    LeftOuter,
    /// `CROSS JOIN`
    Cross,
}

/// A table reference in `FROM`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table or CTE by name.
    Base {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// Parenthesized subquery with an alias.
    Derived {
        /// The subquery.
        query: Box<Query>,
        /// Mandatory alias.
        alias: String,
    },
    /// Explicit join.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// `ON` condition (absent for CROSS JOIN).
        on: Option<Expr>,
    },
    /// `UNNEST(expr) [WITH ORDINALITY] [AS alias [(col, …)]]` — lateral
    /// expansion of a nested-table path (paper §2). In the comma-separated
    /// `FROM` list it behaves as an implicit lateral inner join; as the right
    /// side of a `LEFT JOIN` it preserves rows with empty paths.
    Unnest {
        /// The nested-table expression (a column of type PATH).
        expr: Expr,
        /// True when `WITH ORDINALITY` was given: appends a 1-based
        /// position column.
        with_ordinality: bool,
        /// Optional alias for the produced rows.
        alias: Option<String>,
        /// Optional column aliases.
        column_aliases: Option<Vec<String>>,
    },
}

/// A common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    /// CTE name.
    pub name: String,
    /// Optional column rename list.
    pub columns: Option<Vec<String>>,
    /// The defining query.
    pub query: Query,
}

/// The body of a query (set-operation tree).
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A `SELECT` block.
    Select(Box<Select>),
    /// `UNION [ALL]`
    Union {
        /// Left input.
        left: Box<SetExpr>,
        /// Right input.
        right: Box<SetExpr>,
        /// True for `UNION ALL` (duplicates kept).
        all: bool,
    },
    /// `VALUES (…), (…)`
    Values(Vec<Vec<Expr>>),
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// True for ascending (default).
    pub asc: bool,
}

/// A `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// True when `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Comma-separated `FROM` items (implicit cross/lateral joins).
    /// May be empty: `SELECT CHEAPEST SUM(1) WHERE ? REACHES ? …` (paper
    /// appendix A.1 has no FROM clause).
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` keys.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

/// A full query: CTEs, body, ordering and row limits.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `WITH` common table expressions.
    pub ctes: Vec<Cte>,
    /// The set-expression body.
    pub body: SetExpr,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` row count.
    pub limit: Option<Expr>,
    /// `OFFSET` row count.
    pub offset: Option<Expr>,
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDefAst {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: TypeName,
    /// `NOT NULL` (implied by `PRIMARY KEY`).
    pub not_null: bool,
    /// `PRIMARY KEY`.
    pub primary_key: bool,
}

/// The value of a `SET <option> = <value>` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SetValue {
    /// A literal (`SET row_limit = 1000`).
    Literal(Literal),
    /// A bare word (`SET graph_index = off`).
    Ident(String),
}

/// The preprocessing tier of a `CREATE PATH INDEX … USING …` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathIndexMethod {
    /// `USING LANDMARKS(k)` — an ALT index with `k` landmark distance
    /// vectors for goal-directed bidirectional A*.
    Landmarks(u32),
    /// `USING CONTRACTION` — a contraction hierarchy for bidirectional
    /// upward Dijkstra with stall-on-demand.
    Contraction,
}

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type [NOT NULL] [PRIMARY KEY], …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDefAst>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO name [(cols)] VALUES (…), (…)` or `INSERT INTO … query`
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Source of rows.
        source: Query,
    },
    /// `DELETE FROM name [WHERE …]`
    Delete {
        /// Target table.
        table: String,
        /// Optional filter; absent deletes every row.
        filter: Option<Expr>,
    },
    /// `UPDATE name SET c = e, … [WHERE …]`
    Update {
        /// Target table.
        table: String,
        /// `(column, value)` assignments.
        assignments: Vec<(String, Expr)>,
        /// Optional filter.
        filter: Option<Expr>,
    },
    /// `CREATE GRAPH INDEX name ON table EDGE (src, dst)` — the paper's §6
    /// future-work graph index, implemented here as an extension.
    CreateGraphIndex {
        /// Index name.
        name: String,
        /// Indexed edge table.
        table: String,
        /// Source column.
        src_col: String,
        /// Destination column.
        dst_col: String,
    },
    /// `DROP GRAPH INDEX name`
    DropGraphIndex {
        /// Index name.
        name: String,
    },
    /// `CREATE PATH INDEX [IF NOT EXISTS] name ON table EDGE (src, dst)
    /// [WEIGHT col] USING {LANDMARKS(k) | CONTRACTION}` — a
    /// path-acceleration index precomputed for point-to-point
    /// shortest-path search; the `USING` clause picks the preprocessing
    /// tier.
    CreatePathIndex {
        /// Index name.
        name: String,
        /// Indexed edge table.
        table: String,
        /// Source column.
        src_col: String,
        /// Destination column.
        dst_col: String,
        /// Optional weight column; `None` indexes hop distances.
        weight_col: Option<String>,
        /// The declared preprocessing method.
        method: PathIndexMethod,
        /// `IF NOT EXISTS` was given: creating over an existing name is a
        /// no-op instead of an error.
        if_not_exists: bool,
    },
    /// `DROP PATH INDEX [IF EXISTS] name`
    DropPathIndex {
        /// Index name.
        name: String,
        /// `IF EXISTS` was given: dropping a missing index is a no-op.
        if_exists: bool,
    },
    /// `SHOW PATH INDEXES` — list every registered path index with its
    /// table, kind and built/stale status.
    ShowPathIndexes,
    /// A query.
    Query(Query),
    /// `EXPLAIN query` — renders the optimized logical plan.
    Explain(Query),
    /// `EXPLAIN ANALYZE query` — executes the query and renders the plan
    /// annotated with per-operator row counts and wall time.
    ExplainAnalyze(Query),
    /// `DESCRIBE table`
    Describe {
        /// Table name.
        name: String,
    },
    /// `SET <option> = <value>` — change a session setting.
    Set {
        /// Option name (e.g. `graph_index`, `row_limit`).
        name: String,
        /// New value.
        value: SetValue,
    },
    /// `SHOW <option>` / `SHOW ALL` — read session settings.
    Show {
        /// Option name; `None` for `SHOW ALL`.
        name: Option<String>,
    },
    /// `CHECKPOINT` — force a durable snapshot of the whole database.
    /// A no-op (reported as `skipped`) when the database is in-memory.
    Checkpoint,
}

impl Expr {
    /// Convenience constructor for an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column { table: None, name: name.into() }
    }

    /// Convenience constructor for a qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column { table: Some(table.into()), name: name.into() }
    }

    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// Walk the expression tree, invoking `f` on every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) => {}
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::Between { expr, low, high, .. } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::Case { operand, branches, else_expr } => {
                if let Some(op) = operand {
                    op.visit(f);
                }
                for (w, t) in branches {
                    w.visit(f);
                    t.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            Expr::Cast { expr, .. } => expr.visit(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Reaches(r) => {
                r.source.visit(f);
                r.dest.visit(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_reaches_all_nodes() {
        let e = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinaryOp::Add,
            right: Box::new(Expr::Case {
                operand: None,
                branches: vec![(Expr::col("b"), Expr::int(1))],
                else_expr: Some(Box::new(Expr::int(2))),
            }),
        };
        let mut count = 0;
        e.visit(&mut |_| count += 1);
        assert_eq!(count, 6); // binary, a, case, b, 1, 2
    }
}
