//! Hand-written SQL lexer.

use crate::error::ParseError;
use crate::token::{Keyword, SpannedToken, Token};
use crate::Result;

/// Converts SQL text into a token stream.
///
/// Supported lexical syntax: unquoted identifiers (`[A-Za-z_][A-Za-z0-9_]*`,
/// case-insensitively matched against keywords), `"quoted identifiers"`,
/// `'string literals'` with `''` escaping, integer and decimal numbers
/// (including `1e-3` exponents), `--` line comments, `/* */` block comments,
/// and the operator set of [`Token`].
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, column: 1 }
    }

    /// Tokenize the whole input, appending a final [`Token::Eof`].
    pub fn tokenize(mut self) -> Result<Vec<SpannedToken>> {
        let mut out = Vec::new();
        loop {
            self.skip_whitespace_and_comments()?;
            let (line, column) = (self.line, self.column);
            match self.next_token()? {
                Token::Eof => {
                    out.push(SpannedToken { token: Token::Eof, line, column });
                    return Ok(out);
                }
                token => out.push(SpannedToken { token, line, column }),
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.line, self.column)
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (line, column) = (self.line, self.column);
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(ParseError::new(
                                    "unterminated block comment",
                                    line,
                                    column,
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        let c = match self.peek() {
            None => return Ok(Token::Eof),
            Some(c) => c,
        };
        match c {
            b'(' => {
                self.bump();
                Ok(Token::LParen)
            }
            b')' => {
                self.bump();
                Ok(Token::RParen)
            }
            b',' => {
                self.bump();
                Ok(Token::Comma)
            }
            b';' => {
                self.bump();
                Ok(Token::Semicolon)
            }
            b':' => {
                self.bump();
                Ok(Token::Colon)
            }
            b'?' => {
                self.bump();
                Ok(Token::Question)
            }
            b'*' => {
                self.bump();
                Ok(Token::Star)
            }
            b'+' => {
                self.bump();
                Ok(Token::Plus)
            }
            b'-' => {
                self.bump();
                Ok(Token::Minus)
            }
            b'/' => {
                self.bump();
                Ok(Token::Slash)
            }
            b'%' => {
                self.bump();
                Ok(Token::Percent)
            }
            b'=' => {
                self.bump();
                Ok(Token::Eq)
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Token::NotEq)
                } else {
                    Err(self.error("expected '=' after '!'"))
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Ok(Token::LtEq)
                    }
                    Some(b'>') => {
                        self.bump();
                        Ok(Token::NotEq)
                    }
                    _ => Ok(Token::Lt),
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Token::GtEq)
                } else {
                    Ok(Token::Gt)
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Ok(Token::Concat)
                } else {
                    Err(self.error("expected '||'"))
                }
            }
            b'.' => {
                self.bump();
                Ok(Token::Dot)
            }
            b'\'' => self.lex_string(),
            b'"' => self.lex_quoted_ident(),
            c if c.is_ascii_digit() => self.lex_number(),
            c if c.is_ascii_alphabetic() || c == b'_' => self.lex_word(),
            c => Err(self.error(format!("unexpected character '{}'", c as char))),
        }
    }

    fn lex_string(&mut self) -> Result<Token> {
        let (line, column) = (self.line, self.column);
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(ParseError::new("unterminated string literal", line, column)),
                Some(b'\'') => {
                    // '' escapes a single quote
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(Token::String(s));
                    }
                }
                Some(c) => s.push(c as char),
            }
        }
    }

    fn lex_quoted_ident(&mut self) -> Result<Token> {
        let (line, column) = (self.line, self.column);
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => {
                    return Err(ParseError::new("unterminated quoted identifier", line, column))
                }
                Some(b'"') => {
                    if self.peek() == Some(b'"') {
                        self.bump();
                        s.push('"');
                    } else {
                        return Ok(Token::Ident(s));
                    }
                }
                Some(c) => s.push(c as char),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        // Decimal point followed by a digit (so `1.x` member access never
        // arises — column refs start with letters).
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut lookahead = self.pos + 1;
            if matches!(self.src.get(lookahead), Some(b'+') | Some(b'-')) {
                lookahead += 1;
            }
            if self.src.get(lookahead).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.error("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Token::Float)
                .map_err(|_| self.error(format!("invalid float literal '{text}'")))
        } else {
            text.parse::<i64>()
                .map(Token::Int)
                .map_err(|_| self.error(format!("integer literal '{text}' out of range")))
        }
    }

    fn lex_word(&mut self) -> Result<Token> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let word = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.error("invalid utf-8 in identifier"))?;
        Ok(match Keyword::parse(word) {
            Some(kw) => Token::Keyword(kw),
            None => Token::Ident(word.to_string()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Vec<Token> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_select_statement() {
        let tokens = lex("SELECT a, b FROM t WHERE x = 1;");
        assert_eq!(
            tokens,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("a".into()),
                Token::Comma,
                Token::Ident("b".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("t".into()),
                Token::Keyword(Keyword::Where),
                Token::Ident("x".into()),
                Token::Eq,
                Token::Int(1),
                Token::Semicolon,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_reaches_clause() {
        let tokens = lex("? REACHES id OVER friends EDGE (src, dst)");
        assert!(tokens.contains(&Token::Question));
        assert!(tokens.contains(&Token::Keyword(Keyword::Reaches)));
        assert!(tokens.contains(&Token::Keyword(Keyword::Over)));
        assert!(tokens.contains(&Token::Keyword(Keyword::Edge)));
    }

    #[test]
    fn lexes_cheapest_sum_binding() {
        let tokens = lex("CHEAPEST SUM(e: weight * 2)");
        assert_eq!(tokens[0], Token::Keyword(Keyword::Cheapest));
        assert_eq!(tokens[1], Token::Ident("SUM".into()));
        assert_eq!(tokens[2], Token::LParen);
        assert_eq!(tokens[3], Token::Ident("e".into()));
        assert_eq!(tokens[4], Token::Colon);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(lex("'it''s'"), vec![Token::String("it's".into()), Token::Eof]);
        assert_eq!(lex("''"), vec![Token::String(String::new()), Token::Eof]);
    }

    #[test]
    fn quoted_identifiers_bypass_keywords() {
        assert_eq!(lex("\"select\""), vec![Token::Ident("select".into()), Token::Eof]);
        assert_eq!(lex("\"a\"\"b\""), vec![Token::Ident("a\"b".into()), Token::Eof]);
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42"), vec![Token::Int(42), Token::Eof]);
        assert_eq!(lex("3.5"), vec![Token::Float(3.5), Token::Eof]);
        assert_eq!(lex("1e3"), vec![Token::Float(1000.0), Token::Eof]);
        assert_eq!(lex("2.5e-1"), vec![Token::Float(0.25), Token::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        let tokens = lex("SELECT -- trailing\n 1 /* block\n comment */ + 2");
        assert_eq!(
            tokens,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Int(1),
                Token::Plus,
                Token::Int(2),
                Token::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            lex("<> != <= >= || < > ="),
            vec![
                Token::NotEq,
                Token::NotEq,
                Token::LtEq,
                Token::GtEq,
                Token::Concat,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Eof
            ]
        );
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = Lexer::new("SELECT\n  @").tokenize().unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("'abc").tokenize().is_err());
        assert!(Lexer::new("/* abc").tokenize().is_err());
    }

    #[test]
    fn integer_overflow_is_reported() {
        assert!(Lexer::new("99999999999999999999999").tokenize().is_err());
    }
}
