//! Parse errors with source positions.

use std::fmt;

/// An error produced by the lexer or parser, carrying a 1-based source
/// position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub column: u32,
}

impl ParseError {
    /// Construct an error at a position.
    pub fn new(message: impl Into<String>, line: u32, column: u32) -> ParseError {
        ParseError { message: message.into(), line, column }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new("unexpected token", 3, 14);
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected token");
    }
}
