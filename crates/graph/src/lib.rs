//! # gsql-graph
//!
//! The graph runtime of the reproduction — the counterpart of the paper's
//! "external library" (§3.2) that MonetDB's generated MAL code invokes.
//!
//! The library operates purely on **dense vertex ids** `0..n`: the query
//! engine (gsql-core) is responsible for translating arbitrary SQL values
//! from the edge table's `S`/`D` columns and the filter columns `X`/`Y` into
//! this domain ("all the values from X, Y, S and D are translated into
//! integers from the domain H = {0, …, |V|−1}", §3.1).
//!
//! Provided here:
//!
//! * [`Csr`] — the Compressed Sparse Row representation built by counting
//!   sort + prefix sum, storing for every CSR slot the **original edge-table
//!   row id**, which is what paths are made of (§3.3);
//! * [`bfs`] — breadth-first search for unweighted shortest paths;
//! * [`dijkstra_int`] — Dijkstra with a **radix heap** (Ahuja et al. [11])
//!   for strictly positive integer weights;
//! * [`dijkstra_float`] — Dijkstra with a binary heap for strictly positive
//!   floating-point weights;
//! * [`batch`] — the many-to-many driver: pairs are grouped by source and
//!   one traversal with multi-destination early exit is run per distinct
//!   source, which is what makes Figure 1b's batching amortization work.
//!
//! The runtime is **source-parallel**: distinct-source groups spread across
//! a scoped worker pool (gsql-parallel) with per-worker scratch arenas, and
//! CSR construction/reversal use a parallel counting sort. Every parallel
//! path produces output bit-for-bit identical to its sequential form, and
//! one thread restores the sequential code exactly.

pub mod batch;
pub mod bfs;
pub mod bidir;
pub mod csr;
pub mod dijkstra;
pub mod error;
pub mod path;
pub mod radix_heap;

pub use batch::{BatchComputer, PairResult, WeightSpec};
pub use bfs::{bfs, bfs_into, BfsResult, BfsScratch};
pub use bidir::{bidirectional_bfs, reverse_csr, reverse_csr_with_threads, BidirResult};
pub use csr::Csr;
pub use dijkstra::{
    dijkstra_float, dijkstra_float_into, dijkstra_int, dijkstra_int_into, DijkstraFloatResult,
    DijkstraFloatScratch, DijkstraIntResult, DijkstraIntScratch,
};
pub use error::GraphError;
pub use path::reconstruct_path;
pub use radix_heap::RadixHeap;

/// The traversal algorithm a [`TraversalObserver`] is being told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalKind {
    /// Unweighted BFS (one per distinct source in a batch).
    Bfs,
    /// Weighted Dijkstra (radix or binary heap).
    Dijkstra,
    /// Single-pair bidirectional BFS.
    BidirBfs,
}

impl TraversalKind {
    /// The metric label for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            TraversalKind::Bfs => "bfs",
            TraversalKind::Dijkstra => "dijkstra",
            TraversalKind::BidirBfs => "bidir-bfs",
        }
    }
}

/// Callback for traversal accounting (settled-vertex counts), implemented
/// by the engine's metrics layer. The trait lives here so this crate — and
/// `gsql-accel` above it — stay free of any observability dependency: the
/// engine hands a trait object down via [`BatchComputer::with_observer`].
///
/// Implementations must be cheap and side-effect-free with respect to
/// query results; they are invoked from parallel workers (hence `Sync`).
pub trait TraversalObserver: Sync {
    /// One traversal of `kind` finished having settled/labelled `settled`
    /// vertices.
    fn traversal(&self, kind: TraversalKind, settled: usize);
}

/// Sentinel vertex id meaning "no vertex" / "unreachable".
pub const NO_VERTEX: u32 = u32::MAX;

/// Sentinel CSR slot meaning "no parent edge".
pub const NO_EDGE: u32 = u32::MAX;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
