//! Dijkstra's algorithm for weighted shortest paths.
//!
//! Two variants, matching the paper's runtime (§3.2):
//!
//! * [`dijkstra_int`] — strictly positive **integer** weights, driven by the
//!   monotone [`RadixHeap`](crate::radix_heap::RadixHeap) (Ahuja et al.);
//! * [`dijkstra_float`] — strictly positive **floating-point** weights,
//!   driven by a standard binary heap (a radix queue requires integer keys,
//!   which is why the paper's example casts `weight * 2` to `int`; we keep
//!   a float fallback so arbitrary numeric weight expressions work).
//!
//! Weights are supplied **in CSR slot order** (see
//! [`Csr::permute_weights_int`](crate::csr::Csr::permute_weights_int)), which
//! also guarantees they were validated to be strictly positive.

use crate::csr::Csr;
use crate::radix_heap::RadixHeap;
use crate::{NO_EDGE, NO_VERTEX};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of an integer-weight Dijkstra run.
#[derive(Debug, Clone)]
pub struct DijkstraIntResult {
    /// `dist[v]` = cost of the cheapest path, or `u64::MAX` if unreached.
    pub dist: Vec<u64>,
    /// `parent_edge[v]` = CSR slot of the final edge of the cheapest path.
    pub parent_edge: Vec<u32>,
    /// `parent[v]` = predecessor vertex on the cheapest path.
    pub parent: Vec<u32>,
}

/// Result of a float-weight Dijkstra run.
#[derive(Debug, Clone)]
pub struct DijkstraFloatResult {
    /// `dist[v]` = cost of the cheapest path, or `f64::INFINITY`.
    pub dist: Vec<f64>,
    /// `parent_edge[v]` = CSR slot of the final edge of the cheapest path.
    pub parent_edge: Vec<u32>,
    /// `parent[v]` = predecessor vertex on the cheapest path.
    pub parent: Vec<u32>,
}

/// Reusable working memory for [`dijkstra_int_into`]: distance / parent
/// arenas plus the settled and target sets. After a run the `dist`,
/// `parent` and `parent_edge` fields hold the result (same contract as
/// [`DijkstraIntResult`]).
#[derive(Debug, Default)]
pub struct DijkstraIntScratch {
    /// `dist[v]` = cheapest cost, or `u64::MAX` when unreached.
    pub dist: Vec<u64>,
    /// `parent_edge[v]` = CSR slot of the final edge, or [`NO_EDGE`].
    pub parent_edge: Vec<u32>,
    /// `parent[v]` = predecessor vertex, or [`NO_VERTEX`].
    pub parent: Vec<u32>,
    settled: Vec<bool>,
    is_target: Vec<bool>,
    settled_n: usize,
}

impl DijkstraIntScratch {
    /// Fresh, empty scratch; arenas grow on first use.
    pub fn new() -> DijkstraIntScratch {
        DijkstraIntScratch::default()
    }

    /// Number of vertices settled (popped with their final distance) by the
    /// last run — the work metric goal-directed search tries to shrink.
    /// Maintained incrementally, so reading it is O(1) (it is recorded per
    /// traversal by the always-on metrics layer).
    pub fn settled_count(&self) -> usize {
        self.settled_n
    }

    fn reset(&mut self, n: usize) {
        self.settled_n = 0;
        self.dist.clear();
        self.dist.resize(n, u64::MAX);
        self.parent_edge.clear();
        self.parent_edge.resize(n, NO_EDGE);
        self.parent.clear();
        self.parent.resize(n, NO_VERTEX);
        self.settled.clear();
        self.settled.resize(n, false);
        self.is_target.clear();
        self.is_target.resize(n, false);
    }
}

/// Dijkstra with a radix queue over strictly positive integer weights.
///
/// `weights` must be in CSR slot order. When `targets` is non-empty the
/// search stops once every target is **settled** (popped with its final
/// distance). Unreached vertices keep `u64::MAX`.
pub fn dijkstra_int(
    graph: &Csr,
    source: u32,
    targets: &[u32],
    weights: &[i64],
) -> DijkstraIntResult {
    let mut scratch = DijkstraIntScratch::new();
    dijkstra_int_into(graph, source, targets, weights, &mut scratch);
    DijkstraIntResult {
        dist: scratch.dist,
        parent_edge: scratch.parent_edge,
        parent: scratch.parent,
    }
}

/// [`dijkstra_int`] into a caller-owned scratch, avoiding per-traversal
/// allocations of the `O(|V|)` arenas. The result lives in the scratch's
/// public fields.
pub fn dijkstra_int_into(
    graph: &Csr,
    source: u32,
    targets: &[u32],
    weights: &[i64],
    scratch: &mut DijkstraIntScratch,
) {
    let n = graph.num_vertices() as usize;
    debug_assert_eq!(weights.len(), graph.num_edges());
    scratch.reset(n);
    let DijkstraIntScratch { dist, parent_edge, parent, settled, is_target, settled_n } = scratch;
    let mut remaining = mark_targets(is_target, targets);

    let mut heap: RadixHeap<u32> = RadixHeap::new();
    dist[source as usize] = 0;
    heap.push(0, source);

    while let Some((d, u)) = heap.pop() {
        let ui = u as usize;
        if settled[ui] {
            continue; // stale entry
        }
        settled[ui] = true;
        *settled_n += 1;
        if is_target[ui] {
            is_target[ui] = false;
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
        for (slot, v) in graph.neighbors(u) {
            let vi = v as usize;
            if settled[vi] {
                continue;
            }
            let w = weights[slot] as u64;
            let nd = d + w;
            if nd < dist[vi] {
                dist[vi] = nd;
                parent_edge[vi] = slot as u32;
                parent[vi] = u;
                heap.push(nd, v);
            }
        }
    }
}

/// An `f64` wrapper with a total order, for use inside the binary heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Reusable working memory for [`dijkstra_float_into`]; the float
/// counterpart of [`DijkstraIntScratch`].
#[derive(Debug, Default)]
pub struct DijkstraFloatScratch {
    /// `dist[v]` = cheapest cost, or `f64::INFINITY` when unreached.
    pub dist: Vec<f64>,
    /// `parent_edge[v]` = CSR slot of the final edge, or [`NO_EDGE`].
    pub parent_edge: Vec<u32>,
    /// `parent[v]` = predecessor vertex, or [`NO_VERTEX`].
    pub parent: Vec<u32>,
    settled: Vec<bool>,
    is_target: Vec<bool>,
    settled_n: usize,
}

impl DijkstraFloatScratch {
    /// Fresh, empty scratch; arenas grow on first use.
    pub fn new() -> DijkstraFloatScratch {
        DijkstraFloatScratch::default()
    }

    /// Number of vertices settled by the last run (see
    /// [`DijkstraIntScratch::settled_count`]); O(1).
    pub fn settled_count(&self) -> usize {
        self.settled_n
    }

    fn reset(&mut self, n: usize) {
        self.settled_n = 0;
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.parent_edge.clear();
        self.parent_edge.resize(n, NO_EDGE);
        self.parent.clear();
        self.parent.resize(n, NO_VERTEX);
        self.settled.clear();
        self.settled.resize(n, false);
        self.is_target.clear();
        self.is_target.resize(n, false);
    }
}

/// Dijkstra with a binary heap over strictly positive float weights.
///
/// Same contract as [`dijkstra_int`]; unreached vertices keep
/// `f64::INFINITY`.
pub fn dijkstra_float(
    graph: &Csr,
    source: u32,
    targets: &[u32],
    weights: &[f64],
) -> DijkstraFloatResult {
    let mut scratch = DijkstraFloatScratch::new();
    dijkstra_float_into(graph, source, targets, weights, &mut scratch);
    DijkstraFloatResult {
        dist: scratch.dist,
        parent_edge: scratch.parent_edge,
        parent: scratch.parent,
    }
}

/// [`dijkstra_float`] into a caller-owned scratch; the result lives in the
/// scratch's public fields.
pub fn dijkstra_float_into(
    graph: &Csr,
    source: u32,
    targets: &[u32],
    weights: &[f64],
    scratch: &mut DijkstraFloatScratch,
) {
    let n = graph.num_vertices() as usize;
    debug_assert_eq!(weights.len(), graph.num_edges());
    scratch.reset(n);
    let DijkstraFloatScratch { dist, parent_edge, parent, settled, is_target, settled_n } = scratch;
    let mut remaining = mark_targets(is_target, targets);

    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(Reverse((OrdF64(0.0), source)));

    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        let ui = u as usize;
        if settled[ui] {
            continue;
        }
        settled[ui] = true;
        *settled_n += 1;
        if is_target[ui] {
            is_target[ui] = false;
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
        for (slot, v) in graph.neighbors(u) {
            let vi = v as usize;
            if settled[vi] {
                continue;
            }
            let nd = d + weights[slot];
            if nd < dist[vi] {
                dist[vi] = nd;
                parent_edge[vi] = slot as u32;
                parent[vi] = u;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
}

/// Mark the dedup'd targets in the (pre-cleared) membership vector.
/// `usize::MAX` encodes "no early exit" (full exploration).
fn mark_targets(is_target: &mut [bool], targets: &[u32]) -> usize {
    if targets.is_empty() {
        return usize::MAX;
    }
    let mut remaining = 0;
    for &t in targets {
        let slot = &mut is_target[t as usize];
        if !*slot {
            *slot = true;
            remaining += 1;
        }
    }
    remaining
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;

    fn diamond() -> Csr {
        Csr::from_edges(5, &[0, 0, 1, 2, 3], &[1, 2, 3, 3, 4]).unwrap()
    }

    fn diamond_weights(raw: [i64; 5]) -> (Csr, Vec<i64>) {
        let g = diamond();
        let w = g.permute_weights_int(&raw).unwrap();
        (g, w)
    }

    #[test]
    fn picks_cheaper_branch() {
        // 0->1 costs 10, 0->2 costs 1, 1->3 costs 1, 2->3 costs 1, 3->4 = 1.
        // Cheapest 0~>3 goes through 2 with cost 2.
        let (g, w) = diamond_weights([10, 1, 1, 1, 1]);
        let r = dijkstra_int(&g, 0, &[], &w);
        assert_eq!(r.dist[3], 2);
        assert_eq!(r.parent[3], 2);
        assert_eq!(r.dist[4], 3);
    }

    #[test]
    fn unit_weights_match_bfs() {
        let (g, w) = diamond_weights([1, 1, 1, 1, 1]);
        let dj = dijkstra_int(&g, 0, &[], &w);
        let bf = bfs(&g, 0, &[]);
        for v in 0..5 {
            let b = bf.dist[v];
            let d = dj.dist[v];
            if b == u32::MAX {
                assert_eq!(d, u64::MAX);
            } else {
                assert_eq!(d, b as u64);
            }
        }
    }

    #[test]
    fn float_variant_matches_int_on_integral_weights() {
        let raw = [3i64, 1, 4, 1, 5];
        let (g, wi) = diamond_weights(raw);
        let wf = g.permute_weights_float(&raw.map(|x| x as f64)).unwrap();
        let ri = dijkstra_int(&g, 0, &[], &wi);
        let rf = dijkstra_float(&g, 0, &[], &wf);
        for v in 0..5 {
            if ri.dist[v] == u64::MAX {
                assert!(rf.dist[v].is_infinite());
            } else {
                assert_eq!(ri.dist[v] as f64, rf.dist[v]);
            }
        }
    }

    #[test]
    fn early_exit_settles_targets_exactly() {
        // Chain with a shortcut: 0->1 (1), 1->2 (1), 0->2 (5).
        // Target {2}: must still return the cheap dist 2, not 5 — i.e. the
        // exit happens at settle time, not discovery time.
        let g = Csr::from_edges(3, &[0, 1, 0], &[1, 2, 2]).unwrap();
        let w = g.permute_weights_int(&[1, 1, 5]).unwrap();
        let r = dijkstra_int(&g, 0, &[2], &w);
        assert_eq!(r.dist[2], 2);
    }

    #[test]
    fn unreachable_keeps_sentinel() {
        let g = Csr::from_edges(3, &[0], &[1]).unwrap();
        let w = g.permute_weights_int(&[7]).unwrap();
        let r = dijkstra_int(&g, 0, &[], &w);
        assert_eq!(r.dist[2], u64::MAX);
        let wf = g.permute_weights_float(&[7.0]).unwrap();
        let rf = dijkstra_float(&g, 0, &[], &wf);
        assert!(rf.dist[2].is_infinite());
    }

    #[test]
    fn parent_edges_reconstruct_costs() {
        let (g, w) = diamond_weights([2, 3, 4, 1, 6]);
        let r = dijkstra_int(&g, 0, &[], &w);
        // Verify dist[v] equals the sum of weights along the parent chain.
        for v in 1..5u32 {
            if r.dist[v as usize] == u64::MAX {
                continue;
            }
            let mut acc = 0u64;
            let mut cur = v;
            while cur != 0 {
                let slot = r.parent_edge[cur as usize] as usize;
                acc += w[slot] as u64;
                cur = r.parent[cur as usize];
            }
            assert_eq!(acc, r.dist[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let (g, wi) = diamond_weights([2, 3, 4, 1, 6]);
        let wf = g.permute_weights_float(&[2.0, 3.0, 4.0, 1.0, 6.0]).unwrap();
        let mut si = DijkstraIntScratch::new();
        let mut sf = DijkstraFloatScratch::new();
        for source in 0..g.num_vertices() {
            dijkstra_int_into(&g, source, &[], &wi, &mut si);
            let fresh = dijkstra_int(&g, source, &[], &wi);
            assert_eq!(si.dist, fresh.dist, "int source {source}");
            assert_eq!(si.parent, fresh.parent, "int source {source}");
            dijkstra_float_into(&g, source, &[], &wf, &mut sf);
            let freshf = dijkstra_float(&g, source, &[], &wf);
            assert_eq!(sf.dist, freshf.dist, "float source {source}");
            assert_eq!(sf.parent, freshf.parent, "float source {source}");
        }
    }

    #[test]
    fn settled_count_matches_marked_vertices() {
        let (g, w) = diamond_weights([1, 1, 1, 1, 1]);
        let mut s = DijkstraIntScratch::new();
        dijkstra_int_into(&g, 0, &[], &w, &mut s);
        assert_eq!(s.settled_count(), s.settled.iter().filter(|&&x| x).count());
        assert_eq!(s.settled_count(), 5);
        // Early exit settles fewer vertices, and the counter tracks it.
        dijkstra_int_into(&g, 0, &[1], &w, &mut s);
        assert_eq!(s.settled_count(), s.settled.iter().filter(|&&x| x).count());
        assert!(s.settled_count() < 5);
        let wf = g.permute_weights_float(&[1.0; 5]).unwrap();
        let mut sf = DijkstraFloatScratch::new();
        dijkstra_float_into(&g, 0, &[], &wf, &mut sf);
        assert_eq!(sf.settled_count(), 5);
    }

    #[test]
    fn random_graphs_radix_matches_binary_heap() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let n: u32 = rng.gen_range(2..40);
            let m: usize = rng.gen_range(1..200);
            let src: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
            let dst: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
            let raw: Vec<i64> = (0..m).map(|_| rng.gen_range(1..100)).collect();
            let g = Csr::from_edges(n, &src, &dst).unwrap();
            let wi = g.permute_weights_int(&raw).unwrap();
            let wf = g
                .permute_weights_float(&raw.iter().map(|&x| x as f64).collect::<Vec<_>>())
                .unwrap();
            let s = rng.gen_range(0..n);
            let ri = dijkstra_int(&g, s, &[], &wi);
            let rf = dijkstra_float(&g, s, &[], &wf);
            for v in 0..n as usize {
                if ri.dist[v] == u64::MAX {
                    assert!(rf.dist[v].is_infinite());
                } else {
                    assert_eq!(ri.dist[v] as f64, rf.dist[v]);
                }
            }
        }
    }
}
