//! Breadth-first search for unweighted shortest paths.

use crate::csr::Csr;
use crate::{NO_EDGE, NO_VERTEX};

/// Result of a (possibly early-terminated) BFS from one source.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `dist[v]` = number of hops from the source, or `u32::MAX` when `v`
    /// was not reached (either unreachable or cut off by early exit).
    pub dist: Vec<u32>,
    /// `parent_edge[v]` = CSR slot of the edge that discovered `v`, or
    /// [`NO_EDGE`] for the source / unreached vertices.
    pub parent_edge: Vec<u32>,
    /// `parent[v]` = predecessor vertex, or [`NO_VERTEX`].
    pub parent: Vec<u32>,
}

/// Reusable BFS working memory: the distance / parent arenas plus the
/// frontier queue and target set.
///
/// A batch run performs one traversal per distinct source; reusing one
/// scratch per worker turns the per-traversal `O(|V|)` allocations into
/// `O(|V|)` resets of already-owned memory. After [`bfs_into`] the `dist`,
/// `parent` and `parent_edge` fields hold the traversal result (same
/// contract as [`BfsResult`]).
#[derive(Debug, Default)]
pub struct BfsScratch {
    /// `dist[v]` = hops from the source, or `u32::MAX` when unreached.
    pub dist: Vec<u32>,
    /// `parent_edge[v]` = CSR slot of the discovering edge, or [`NO_EDGE`].
    pub parent_edge: Vec<u32>,
    /// `parent[v]` = predecessor vertex, or [`NO_VERTEX`].
    pub parent: Vec<u32>,
    queue: std::collections::VecDeque<u32>,
    is_target: Vec<bool>,
    settled_n: usize,
}

impl BfsScratch {
    /// Fresh, empty scratch; arenas grow on first use.
    pub fn new() -> BfsScratch {
        BfsScratch::default()
    }

    /// Number of vertices labelled (discovered) by the last run — BFS's
    /// analogue of Dijkstra's settled count. Maintained incrementally, so
    /// reading it is O(1).
    pub fn settled_count(&self) -> usize {
        self.settled_n
    }

    fn reset(&mut self, n: usize) {
        self.settled_n = 0;
        self.dist.clear();
        self.dist.resize(n, u32::MAX);
        self.parent_edge.clear();
        self.parent_edge.resize(n, NO_EDGE);
        self.parent.clear();
        self.parent.resize(n, NO_VERTEX);
        self.is_target.clear();
        self.is_target.resize(n, false);
        self.queue.clear();
    }
}

/// Run a BFS from `source`.
///
/// When `targets` is non-empty the search stops as soon as every target has
/// been discovered (their BFS distances are final at discovery time) — this
/// is the multi-destination early exit used by the batch driver. When
/// `targets` is empty the whole reachable component is explored, which is
/// what the reachability-only mode of the paper's library does ("the library
/// still performs a BFS over the source and destination vertices, discarding
/// the computed shortest paths", §3.2).
pub fn bfs(graph: &Csr, source: u32, targets: &[u32]) -> BfsResult {
    let mut scratch = BfsScratch::new();
    bfs_into(graph, source, targets, &mut scratch);
    BfsResult { dist: scratch.dist, parent_edge: scratch.parent_edge, parent: scratch.parent }
}

/// [`bfs`] into a caller-owned [`BfsScratch`], avoiding per-traversal
/// allocations. The result lives in the scratch's public arenas.
pub fn bfs_into(graph: &Csr, source: u32, targets: &[u32], scratch: &mut BfsScratch) {
    let n = graph.num_vertices() as usize;
    scratch.reset(n);
    let BfsScratch { dist, parent_edge, parent, queue, is_target, settled_n } = scratch;

    let mut remaining: usize;
    if targets.is_empty() {
        remaining = usize::MAX; // never hits zero: full exploration
    } else {
        remaining = 0;
        for &t in targets.iter() {
            let slot = &mut is_target[t as usize];
            if !*slot {
                *slot = true;
                remaining += 1;
            }
        }
    }

    dist[source as usize] = 0;
    *settled_n = 1;
    if is_target[source as usize] {
        remaining -= 1;
        if remaining == 0 {
            return;
        }
    }

    queue.push_back(source);
    'outer: while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for (slot, v) in graph.neighbors(u) {
            let vi = v as usize;
            if dist[vi] != u32::MAX {
                continue;
            }
            dist[vi] = du + 1;
            *settled_n += 1;
            parent_edge[vi] = slot as u32;
            parent[vi] = u;
            if is_target[vi] {
                remaining -= 1;
                if remaining == 0 {
                    break 'outer;
                }
            }
            queue.push_back(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0->1, 0->2, 1->3, 2->3, 3->4
        Csr::from_edges(5, &[0, 0, 1, 2, 3], &[1, 2, 3, 3, 4]).unwrap()
    }

    #[test]
    fn distances_from_source() {
        let g = diamond();
        let r = bfs(&g, 0, &[]);
        assert_eq!(r.dist, vec![0, 1, 1, 2, 3]);
    }

    #[test]
    fn unreachable_vertices_stay_max() {
        let g = Csr::from_edges(4, &[0, 2], &[1, 3]).unwrap();
        let r = bfs(&g, 0, &[]);
        assert_eq!(r.dist[1], 1);
        assert_eq!(r.dist[2], u32::MAX);
        assert_eq!(r.dist[3], u32::MAX);
    }

    #[test]
    fn direction_matters() {
        let g = Csr::from_edges(2, &[0], &[1]).unwrap();
        let fwd = bfs(&g, 0, &[]);
        assert_eq!(fwd.dist[1], 1);
        let back = bfs(&g, 1, &[]);
        assert_eq!(back.dist[0], u32::MAX);
    }

    #[test]
    fn parent_edges_form_shortest_path_tree() {
        let g = diamond();
        let r = bfs(&g, 0, &[]);
        // Walk back from 4: must reach 0 in exactly dist[4] steps.
        let mut v = 4u32;
        let mut hops = 0;
        while v != 0 {
            let p = r.parent[v as usize];
            assert_ne!(p, NO_VERTEX);
            assert_eq!(r.dist[v as usize], r.dist[p as usize] + 1);
            // The parent edge must actually connect p -> v.
            let slot = r.parent_edge[v as usize] as usize;
            assert_eq!(g.target(slot), v);
            v = p;
            hops += 1;
        }
        assert_eq!(hops, r.dist[4]);
    }

    #[test]
    fn early_exit_stops_after_targets_found() {
        // Long chain 0->1->...->9 plus target 1: searching only for {1}
        // must not explore the tail.
        let src: Vec<u32> = (0..9).collect();
        let dst: Vec<u32> = (1..10).collect();
        let g = Csr::from_edges(10, &src, &dst).unwrap();
        let r = bfs(&g, 0, &[1]);
        assert_eq!(r.dist[1], 1);
        // Vertices beyond the frontier at exit time were never labelled.
        assert_eq!(r.dist[9], u32::MAX);
    }

    #[test]
    fn source_as_target_is_distance_zero() {
        let g = diamond();
        let r = bfs(&g, 2, &[2]);
        assert_eq!(r.dist[2], 0);
    }

    #[test]
    fn duplicate_targets_handled() {
        let g = diamond();
        let r = bfs(&g, 0, &[3, 3, 3]);
        assert_eq!(r.dist[3], 2);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let g = diamond();
        let mut scratch = BfsScratch::new();
        for source in 0..g.num_vertices() {
            bfs_into(&g, source, &[], &mut scratch);
            let fresh = bfs(&g, source, &[]);
            assert_eq!(scratch.dist, fresh.dist, "source {source}");
            assert_eq!(scratch.parent, fresh.parent, "source {source}");
            assert_eq!(scratch.parent_edge, fresh.parent_edge, "source {source}");
        }
    }

    #[test]
    fn settled_count_tracks_labelled_vertices() {
        let g = diamond();
        let mut s = BfsScratch::new();
        bfs_into(&g, 0, &[], &mut s);
        assert_eq!(s.settled_count(), s.dist.iter().filter(|&&d| d != u32::MAX).count());
        assert_eq!(s.settled_count(), 5);
        bfs_into(&g, 0, &[1], &mut s);
        assert_eq!(s.settled_count(), s.dist.iter().filter(|&&d| d != u32::MAX).count());
        assert!(s.settled_count() < 5);
    }

    #[test]
    fn multi_target_early_exit_finds_all() {
        let g = diamond();
        let r = bfs(&g, 0, &[4, 1]);
        assert_eq!(r.dist[1], 1);
        assert_eq!(r.dist[4], 3);
    }
}
