//! The many-to-many driver — the library's entry point as described in §3.2.
//!
//! The paper's runtime is invoked with "(1) the columns S and D, denoting the
//! edges of the graph; (2) the source X and destination Y vertices to
//! filter; (3) in case, the additional columns W for the weights". It returns
//! the row ids of connected pairs plus the requested shortest paths.
//!
//! [`BatchComputer`] implements that contract over a [`Csr`]: given a list
//! of `(source, dest)` pairs it groups them by source, runs **one traversal
//! per distinct source** with multi-destination early exit, and returns
//! per-pair reachability, cost and (optionally) the path as edge row ids.
//! This grouping is precisely what lets Figure 1b's batched execution
//! amortize the graph-construction cost.

use crate::bfs::{bfs_into, BfsScratch};
use crate::csr::Csr;
use crate::dijkstra::{
    dijkstra_float_into, dijkstra_int_into, DijkstraFloatScratch, DijkstraIntScratch,
};
use crate::error::GraphError;
use crate::path::reconstruct_path;
use crate::{Result, TraversalKind, TraversalObserver};
use gsql_parallel::Pool;
use std::collections::HashMap;

/// Weight specification for one `CHEAPEST SUM` evaluation.
///
/// Weight vectors are indexed by **original edge-table row id** (the order
/// the edge table was materialized in), not CSR slot order; the computer
/// permutes and validates them once per batch.
#[derive(Debug, Clone)]
pub enum WeightSpec {
    /// No weights: BFS, cost = hop count. This is what `CHEAPEST SUM(1)`
    /// compiles to.
    Unweighted,
    /// Strictly positive integer weights: Dijkstra + radix queue.
    Int(Vec<i64>),
    /// Strictly positive float weights: Dijkstra + binary heap.
    Float(Vec<f64>),
}

/// The cost of one shortest path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostValue {
    /// Hop count or integer-weighted cost.
    Int(i64),
    /// Float-weighted cost.
    Float(f64),
}

impl CostValue {
    /// The cost as f64 regardless of representation.
    pub fn as_f64(&self) -> f64 {
        match self {
            CostValue::Int(v) => *v as f64,
            CostValue::Float(v) => *v,
        }
    }
}

/// Result for one `(source, dest)` pair.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// Whether a finite path exists (`source == dest` counts: empty path).
    pub reachable: bool,
    /// Shortest-path cost; `None` when unreachable.
    pub cost: Option<CostValue>,
    /// Edge-table row ids of one shortest path, source-to-dest order;
    /// `None` when unreachable or when paths were not requested.
    pub path: Option<Vec<u32>>,
}

impl PairResult {
    fn unreachable() -> PairResult {
        PairResult { reachable: false, cost: None, path: None }
    }
}

/// Runs batched reachability / shortest-path queries over one CSR.
///
/// Each distinct source is an independent traversal, so the batch is
/// **source-parallel**: [`BatchComputer::with_threads`] spreads the
/// distinct-source groups across a scoped worker pool (dynamic stealing —
/// traversal costs are irregular), each worker reusing one thread-local
/// distance/visited scratch arena. Per-pair results are merged back in
/// input order, so the output is bit-for-bit identical to `threads = 1`.
pub struct BatchComputer<'g> {
    graph: &'g Csr,
    threads: usize,
    deadline: Option<std::time::Instant>,
    observer: Option<&'g dyn TraversalObserver>,
}

impl<'g> BatchComputer<'g> {
    /// Create a computer over `graph` (sequential by default).
    pub fn new(graph: &'g Csr) -> BatchComputer<'g> {
        BatchComputer { graph, threads: 1, deadline: None, observer: None }
    }

    /// Set the degree of parallelism for [`BatchComputer::compute`]
    /// (clamped to at least 1; `1` keeps the sequential path).
    pub fn with_threads(mut self, threads: usize) -> BatchComputer<'g> {
        self.threads = threads.max(1);
        self
    }

    /// Abandon the batch once `deadline` passes. The check runs before
    /// every per-source traversal, so a long batch is interrupted between
    /// groups instead of only failing after the whole batch finishes;
    /// [`BatchComputer::compute`] then returns
    /// [`GraphError::DeadlineExceeded`] rather than partial results.
    pub fn with_deadline(mut self, deadline: Option<std::time::Instant>) -> BatchComputer<'g> {
        self.deadline = deadline;
        self
    }

    /// Report every per-source traversal (kind + settled-vertex count) to
    /// `observer`. The callback runs on the worker that performed the
    /// traversal, once per distinct source, and never influences results.
    pub fn with_observer(
        mut self,
        observer: Option<&'g dyn TraversalObserver>,
    ) -> BatchComputer<'g> {
        self.observer = observer;
        self
    }

    /// The configured degree of parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Compute results for every `(source, dest)` pair.
    ///
    /// * `spec` selects the algorithm (BFS / int Dijkstra / float Dijkstra)
    ///   and carries the per-row weights, which are validated to be strictly
    ///   positive (a [`GraphError::NonPositiveWeight`] is raised otherwise —
    ///   the paper's runtime exception).
    /// * When `compute_paths` is false the traversals still run (that is
    ///   how the paper's library assesses reachability) but no path vectors
    ///   are materialized.
    ///
    /// Pairs are grouped by source; each distinct source costs one traversal
    /// with early exit once all its destinations are settled. Duplicate
    /// `(source, dest)` pairs are answered from one computation — the batch
    /// is deduplicated up front and the shared result cloned back into every
    /// input position. Groups run on the configured worker pool; results are
    /// always in input-pair order.
    pub fn compute(
        &self,
        pairs: &[(u32, u32)],
        spec: &WeightSpec,
        compute_paths: bool,
    ) -> Result<Vec<PairResult>> {
        let mut first_of: HashMap<(u32, u32), usize> = HashMap::with_capacity(pairs.len());
        let mut uniq: Vec<(u32, u32)> = Vec::with_capacity(pairs.len());
        let mut slot: Vec<usize> = Vec::with_capacity(pairs.len());
        for &p in pairs {
            let next = uniq.len();
            let s = *first_of.entry(p).or_insert(next);
            if s == next {
                uniq.push(p);
            }
            slot.push(s);
        }
        if uniq.len() == pairs.len() {
            return self.compute_all(pairs, spec, compute_paths);
        }
        let uniq_results = self.compute_all(&uniq, spec, compute_paths)?;
        Ok(slot.into_iter().map(|s| uniq_results[s].clone()).collect())
    }

    /// [`BatchComputer::compute`] without the duplicate fast path: every
    /// pair is traversed as given (pairs within one source group still
    /// share that group's single traversal).
    fn compute_all(
        &self,
        pairs: &[(u32, u32)],
        spec: &WeightSpec,
        compute_paths: bool,
    ) -> Result<Vec<PairResult>> {
        let n = self.graph.num_vertices();
        for &(s, d) in pairs {
            if s >= n {
                return Err(GraphError::VertexOutOfRange { id: s, n });
            }
            if d >= n {
                return Err(GraphError::VertexOutOfRange { id: d, n });
            }
        }
        // Permute + validate weights once for the whole batch (the gather
        // parallelizes over the computer's pool; threads = 1 is sequential).
        let permuted: PermutedWeights = match spec {
            WeightSpec::Unweighted => PermutedWeights::None,
            WeightSpec::Int(w) => {
                PermutedWeights::Int(self.graph.permute_weights_int_with_threads(w, self.threads)?)
            }
            WeightSpec::Float(w) => PermutedWeights::Float(
                self.graph.permute_weights_float_with_threads(w, self.threads)?,
            ),
        };

        // Group pair indices by source vertex: `order[range]` holds the
        // input indices of one distinct-source group.
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_unstable_by_key(|&i| pairs[i].0);
        let mut groups: Vec<(u32, std::ops::Range<usize>)> = Vec::new();
        let mut g = 0;
        while g < order.len() {
            let source = pairs[order[g]].0;
            let mut end = g;
            while end < order.len() && pairs[order[end]].0 == source {
                end += 1;
            }
            groups.push((source, g..end));
            g = end;
        }

        // One traversal per group, source-parallel with per-worker scratch
        // arenas. `Pool::map_with` returns group results in group order and
        // degenerates to an inline loop when `threads == 1`. Each group
        // checks the deadline before traversing; an expired deadline makes
        // the remaining groups no-ops and fails the whole batch below.
        let expired = std::sync::atomic::AtomicBool::new(false);
        let pool = Pool::new(self.threads);
        let per_group = pool.map_with(groups.len(), GroupScratch::default, |scratch, gi| {
            if let Some(deadline) = self.deadline {
                if expired.load(std::sync::atomic::Ordering::Relaxed)
                    || std::time::Instant::now() >= deadline
                {
                    expired.store(true, std::sync::atomic::Ordering::Relaxed);
                    return Vec::new();
                }
            }
            let (source, ref range) = groups[gi];
            let group = &order[range.clone()];
            let targets: Vec<u32> = group.iter().map(|&i| pairs[i].1).collect();
            self.run_group(source, &targets, group, &permuted, compute_paths, scratch)
        });
        if expired.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(GraphError::DeadlineExceeded);
        }

        // Merge in input order: every input index appears in exactly one
        // group, so the scatter is a permutation.
        let mut results = vec![PairResult::unreachable(); pairs.len()];
        for group_results in per_group {
            for (idx, r) in group_results {
                results[idx] = r;
            }
        }
        Ok(results)
    }

    /// Convenience wrapper for a single pair.
    pub fn shortest_path(&self, source: u32, dest: u32, spec: &WeightSpec) -> Result<PairResult> {
        Ok(self.compute(&[(source, dest)], spec, true)?.pop().expect("one pair in, one out"))
    }

    fn run_group(
        &self,
        source: u32,
        targets: &[u32],
        group: &[usize],
        weights: &PermutedWeights,
        compute_paths: bool,
        scratch: &mut GroupScratch,
    ) -> Vec<(usize, PairResult)> {
        let mut out = Vec::with_capacity(group.len());
        match weights {
            PermutedWeights::None => {
                bfs_into(self.graph, source, targets, &mut scratch.bfs);
                if let Some(obs) = self.observer {
                    obs.traversal(TraversalKind::Bfs, scratch.bfs.settled_count());
                }
                let r = &scratch.bfs;
                for (&idx, &dest) in group.iter().zip(targets) {
                    let d = r.dist[dest as usize];
                    if d == u32::MAX {
                        continue; // stays unreachable
                    }
                    out.push((
                        idx,
                        PairResult {
                            reachable: true,
                            cost: Some(CostValue::Int(d as i64)),
                            path: compute_paths.then(|| {
                                reconstruct_path(
                                    self.graph,
                                    &r.parent,
                                    &r.parent_edge,
                                    source,
                                    dest,
                                )
                                .expect("reachable")
                            }),
                        },
                    ));
                }
            }
            PermutedWeights::Int(w) => {
                dijkstra_int_into(self.graph, source, targets, w, &mut scratch.int);
                if let Some(obs) = self.observer {
                    obs.traversal(TraversalKind::Dijkstra, scratch.int.settled_count());
                }
                let r = &scratch.int;
                for (&idx, &dest) in group.iter().zip(targets) {
                    let d = r.dist[dest as usize];
                    if d == u64::MAX {
                        continue;
                    }
                    out.push((
                        idx,
                        PairResult {
                            reachable: true,
                            cost: Some(CostValue::Int(d as i64)),
                            path: compute_paths.then(|| {
                                reconstruct_path(
                                    self.graph,
                                    &r.parent,
                                    &r.parent_edge,
                                    source,
                                    dest,
                                )
                                .expect("reachable")
                            }),
                        },
                    ));
                }
            }
            PermutedWeights::Float(w) => {
                dijkstra_float_into(self.graph, source, targets, w, &mut scratch.float);
                if let Some(obs) = self.observer {
                    obs.traversal(TraversalKind::Dijkstra, scratch.float.settled_count());
                }
                let r = &scratch.float;
                for (&idx, &dest) in group.iter().zip(targets) {
                    let d = r.dist[dest as usize];
                    if d.is_infinite() {
                        continue;
                    }
                    out.push((
                        idx,
                        PairResult {
                            reachable: true,
                            cost: Some(CostValue::Float(d)),
                            path: compute_paths.then(|| {
                                reconstruct_path(
                                    self.graph,
                                    &r.parent,
                                    &r.parent_edge,
                                    source,
                                    dest,
                                )
                                .expect("reachable")
                            }),
                        },
                    ));
                }
            }
        }
        out
    }
}

/// Per-worker traversal scratch: one arena per algorithm family, grown on
/// first use and reused across every group the worker processes.
#[derive(Debug, Default)]
struct GroupScratch {
    bfs: BfsScratch,
    int: DijkstraIntScratch,
    float: DijkstraFloatScratch,
}

enum PermutedWeights {
    None,
    Int(Vec<i64>),
    Float(Vec<f64>),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        Csr::from_edges(5, &[0, 0, 1, 2, 3], &[1, 2, 3, 3, 4]).unwrap()
    }

    #[test]
    fn unweighted_batch_mixed_reachability() {
        let g = diamond();
        let c = BatchComputer::new(&g);
        let pairs = [(0, 4), (4, 0), (0, 0), (2, 3), (1, 2)];
        let r = c.compute(&pairs, &WeightSpec::Unweighted, true).unwrap();
        assert!(r[0].reachable);
        assert_eq!(r[0].cost, Some(CostValue::Int(3)));
        assert_eq!(r[0].path.as_ref().unwrap().len(), 3);
        assert!(!r[1].reachable);
        assert!(r[1].cost.is_none());
        assert!(r[2].reachable); // self pair
        assert_eq!(r[2].cost, Some(CostValue::Int(0)));
        assert_eq!(r[2].path.as_ref().unwrap().len(), 0);
        assert!(r[3].reachable);
        assert_eq!(r[3].cost, Some(CostValue::Int(1)));
        assert!(!r[4].reachable); // 1 cannot reach 2 in the diamond
    }

    #[test]
    fn weighted_batch_int() {
        let g = diamond();
        let c = BatchComputer::new(&g);
        // row weights: 0->1:10, 0->2:1, 1->3:1, 2->3:1, 3->4:1
        let spec = WeightSpec::Int(vec![10, 1, 1, 1, 1]);
        let r = c.compute(&[(0, 3), (0, 4)], &spec, true).unwrap();
        assert_eq!(r[0].cost, Some(CostValue::Int(2)));
        assert_eq!(r[0].path.as_ref().unwrap(), &vec![1, 3]); // rows via vertex 2
        assert_eq!(r[1].cost, Some(CostValue::Int(3)));
    }

    #[test]
    fn weighted_batch_float() {
        let g = diamond();
        let c = BatchComputer::new(&g);
        let spec = WeightSpec::Float(vec![0.5, 2.5, 0.25, 0.25, 1.0]);
        let r = c.compute(&[(0, 3)], &spec, true).unwrap();
        assert_eq!(r[0].cost, Some(CostValue::Float(0.75)));
        assert_eq!(r[0].path.as_ref().unwrap(), &vec![0, 2]); // via vertex 1
    }

    #[test]
    fn paths_skipped_when_not_requested() {
        let g = diamond();
        let c = BatchComputer::new(&g);
        let r = c.compute(&[(0, 4)], &WeightSpec::Unweighted, false).unwrap();
        assert!(r[0].reachable);
        assert!(r[0].path.is_none());
        assert!(r[0].cost.is_some());
    }

    #[test]
    fn invalid_weights_rejected_for_whole_batch() {
        let g = diamond();
        let c = BatchComputer::new(&g);
        let err = c.compute(&[(0, 1)], &WeightSpec::Int(vec![1, 1, -3, 1, 1]), true).unwrap_err();
        assert!(matches!(err, GraphError::NonPositiveWeight { .. }));
    }

    #[test]
    fn out_of_range_pair_rejected() {
        let g = diamond();
        let c = BatchComputer::new(&g);
        assert!(matches!(
            c.compute(&[(0, 99)], &WeightSpec::Unweighted, true),
            Err(GraphError::VertexOutOfRange { id: 99, .. })
        ));
    }

    #[test]
    fn many_pairs_same_source_one_traversal_semantics() {
        // All pairs share source 0; results must match individual queries.
        let g = diamond();
        let c = BatchComputer::new(&g);
        let pairs: Vec<(u32, u32)> = (0..5).map(|d| (0, d)).collect();
        let batch = c.compute(&pairs, &WeightSpec::Unweighted, true).unwrap();
        for (i, &(s, d)) in pairs.iter().enumerate() {
            let single = c.shortest_path(s, d, &WeightSpec::Unweighted).unwrap();
            assert_eq!(batch[i].reachable, single.reachable, "pair {i}");
            assert_eq!(batch[i].cost, single.cost, "pair {i}");
        }
    }

    #[test]
    fn parallel_threads_match_sequential_exactly() {
        let g = diamond();
        let pairs: Vec<(u32, u32)> =
            (0..5u32).flat_map(|s| (0..5u32).map(move |d| (s, d))).collect();
        let specs = [
            WeightSpec::Unweighted,
            WeightSpec::Int(vec![10, 1, 1, 1, 1]),
            WeightSpec::Float(vec![0.5, 2.5, 0.25, 0.25, 1.0]),
        ];
        for spec in &specs {
            let seq = BatchComputer::new(&g).compute(&pairs, spec, true).unwrap();
            for threads in [2, 4, 8] {
                let par = BatchComputer::new(&g)
                    .with_threads(threads)
                    .compute(&pairs, spec, true)
                    .unwrap();
                assert_eq!(par.len(), seq.len());
                for (i, (p, s)) in par.iter().zip(&seq).enumerate() {
                    assert_eq!(p.reachable, s.reachable, "threads {threads} pair {i}");
                    assert_eq!(p.cost, s.cost, "threads {threads} pair {i}");
                    assert_eq!(p.path, s.path, "threads {threads} pair {i}");
                }
            }
        }
    }

    #[test]
    fn expired_deadline_abandons_the_batch() {
        let g = diamond();
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let pairs: Vec<(u32, u32)> =
            (0..5u32).flat_map(|s| (0..5u32).map(move |d| (s, d))).collect();
        for threads in [1, 4] {
            let err = BatchComputer::new(&g)
                .with_threads(threads)
                .with_deadline(Some(past))
                .compute(&pairs, &WeightSpec::Unweighted, true)
                .unwrap_err();
            assert!(matches!(err, GraphError::DeadlineExceeded), "threads {threads}: {err}");
        }
        // A generous deadline changes nothing.
        let future = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let plain = BatchComputer::new(&g).compute(&pairs, &WeightSpec::Unweighted, true).unwrap();
        let timed = BatchComputer::new(&g)
            .with_deadline(Some(future))
            .compute(&pairs, &WeightSpec::Unweighted, true)
            .unwrap();
        for (p, t) in plain.iter().zip(&timed) {
            assert_eq!(p.cost, t.cost);
        }
    }

    #[test]
    fn duplicate_pairs_get_identical_results() {
        let g = diamond();
        let c = BatchComputer::new(&g);
        let r = c.compute(&[(0, 3), (0, 3)], &WeightSpec::Unweighted, true).unwrap();
        assert_eq!(r[0].cost, r[1].cost);
        assert_eq!(r[0].path, r[1].path);
    }

    #[test]
    fn interleaved_duplicates_preserve_input_order() {
        // Duplicates scattered through the batch are answered from one
        // computation each but land back in their input positions.
        let g = diamond();
        let pairs = [(0u32, 3u32), (2, 4), (0, 3), (4, 0), (2, 4), (0, 3), (0, 4)];
        let uniq = [(0u32, 3u32), (2, 4), (4, 0), (0, 4)];
        for threads in [1, 4] {
            let c = BatchComputer::new(&g).with_threads(threads);
            let r = c.compute(&pairs, &WeightSpec::Unweighted, true).unwrap();
            let u = c.compute(&uniq, &WeightSpec::Unweighted, true).unwrap();
            let expect = [&u[0], &u[1], &u[0], &u[2], &u[1], &u[0], &u[3]];
            for (i, (got, want)) in r.iter().zip(expect).enumerate() {
                assert_eq!(got.reachable, want.reachable, "threads {threads} pair {i}");
                assert_eq!(got.cost, want.cost, "threads {threads} pair {i}");
                assert_eq!(got.path, want.path, "threads {threads} pair {i}");
            }
        }
    }

    #[test]
    fn observer_sees_one_traversal_per_distinct_source() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct CountingObserver {
            n: AtomicUsize,
            settled: AtomicUsize,
        }
        impl TraversalObserver for CountingObserver {
            fn traversal(&self, kind: TraversalKind, settled: usize) {
                assert_eq!(kind, TraversalKind::Bfs);
                self.n.fetch_add(1, Ordering::Relaxed);
                self.settled.fetch_add(settled, Ordering::Relaxed);
            }
        }
        let g = diamond();
        let obs = CountingObserver { n: AtomicUsize::new(0), settled: AtomicUsize::new(0) };
        let pairs = [(0u32, 4u32), (0, 3), (2, 3)];
        for threads in [1, 4] {
            obs.n.store(0, Ordering::Relaxed);
            obs.settled.store(0, Ordering::Relaxed);
            BatchComputer::new(&g)
                .with_threads(threads)
                .with_observer(Some(&obs))
                .compute(&pairs, &WeightSpec::Unweighted, false)
                .unwrap();
            // Sources {0, 2}: one traversal each regardless of width.
            assert_eq!(obs.n.load(Ordering::Relaxed), 2, "threads {threads}");
            assert!(obs.settled.load(Ordering::Relaxed) >= 2, "threads {threads}");
        }
    }

    #[test]
    fn duplicate_out_of_range_pairs_still_rejected() {
        let g = diamond();
        let c = BatchComputer::new(&g);
        assert!(matches!(
            c.compute(&[(0, 99), (0, 99)], &WeightSpec::Unweighted, true),
            Err(GraphError::VertexOutOfRange { id: 99, .. })
        ));
    }
}
