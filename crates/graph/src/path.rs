//! Shortest-path reconstruction from parent-edge arrays.

use crate::csr::Csr;
use crate::{NO_EDGE, NO_VERTEX};

/// Reconstruct the path `source ~> dest` as a list of **original edge-table
/// row ids**, ordered from the edge leaving `source` to the edge entering
/// `dest`.
///
/// Returns:
/// * `Some(vec![])` when `source == dest` (the zero-hop path of the paper's
///   appendix example A.4, cost 0, empty nested table);
/// * `Some(rows)` when a parent chain exists;
/// * `None` when `dest` was not reached by the traversal.
pub fn reconstruct_path(
    graph: &Csr,
    parent: &[u32],
    parent_edge: &[u32],
    source: u32,
    dest: u32,
) -> Option<Vec<u32>> {
    if source == dest {
        return Some(Vec::new());
    }
    if parent[dest as usize] == NO_VERTEX {
        return None;
    }
    let mut rows = Vec::new();
    let mut cur = dest;
    while cur != source {
        let slot = parent_edge[cur as usize];
        debug_assert_ne!(slot, NO_EDGE, "parent chain inconsistent");
        rows.push(graph.edge_row(slot as usize));
        cur = parent[cur as usize];
        debug_assert!(rows.len() <= graph.num_edges(), "cycle in parent chain");
    }
    rows.reverse();
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;

    #[test]
    fn reconstructs_row_ids_in_order() {
        // rows: 0: 0->1, 1: 0->2, 2: 1->3, 3: 2->3, 4: 3->4
        let g = Csr::from_edges(5, &[0, 0, 1, 2, 3], &[1, 2, 3, 3, 4]).unwrap();
        let r = bfs(&g, 0, &[]);
        let path = reconstruct_path(&g, &r.parent, &r.parent_edge, 0, 4).unwrap();
        assert_eq!(path.len(), 3);
        // Path is 0->{1 or 2}->3->4: first row is 0 or 1, then 2 or 3, then 4.
        assert!(path[0] == 0 || path[0] == 1);
        assert!(path[1] == 2 || path[1] == 3);
        assert_eq!(path[2], 4);
    }

    #[test]
    fn zero_hop_path_is_empty() {
        let g = Csr::from_edges(2, &[0], &[1]).unwrap();
        let r = bfs(&g, 0, &[]);
        assert_eq!(reconstruct_path(&g, &r.parent, &r.parent_edge, 0, 0), Some(vec![]));
    }

    #[test]
    fn unreachable_is_none() {
        let g = Csr::from_edges(3, &[0], &[1]).unwrap();
        let r = bfs(&g, 0, &[]);
        assert_eq!(reconstruct_path(&g, &r.parent, &r.parent_edge, 0, 2), None);
    }
}
