//! Compressed Sparse Row graph representation.
//!
//! The paper (§3.2): "Our implementation always builds a Compressed Sparse
//! Row (CSR) representation of the underlying graph, somewhat resembling an
//! adjacency list. The columns {S, D} ∪ W are sorted according to S, thus a
//! prefix sum is computed on S itself."
//!
//! We keep, for every CSR slot, the **original edge-table row id** so that a
//! shortest path can be reported as a list of row references into the edge
//! table (the §3.3 nested-table representation) and so that per-query weight
//! columns can be permuted into CSR order.

use crate::error::GraphError;
use crate::Result;
use gsql_parallel::{Pool, SharedSlice};

/// A directed graph in CSR form over dense vertex ids `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes the out-edges of `v` in
    /// [`Csr::targets`] / [`Csr::edge_rows`]. Length `n + 1`.
    offsets: Vec<usize>,
    /// Destination vertex of each CSR slot.
    targets: Vec<u32>,
    /// Original edge-table row id of each CSR slot.
    edge_rows: Vec<u32>,
}

impl Csr {
    /// Build a CSR from parallel `src`/`dst` arrays of dense vertex ids.
    ///
    /// Edge `i` runs `src[i] -> dst[i]` and keeps row id `i`. Duplicate
    /// edges and self-loops are preserved (they are legitimate rows of the
    /// edge table). Construction is the counting-sort + prefix-sum pass the
    /// paper describes; `O(|V| + |E|)`.
    pub fn from_edges(num_vertices: u32, src: &[u32], dst: &[u32]) -> Result<Csr> {
        if src.len() != dst.len() {
            return Err(GraphError::LengthMismatch(format!(
                "src has {} entries, dst has {}",
                src.len(),
                dst.len()
            )));
        }
        let n = num_vertices as usize;
        for &v in src.iter().chain(dst.iter()) {
            if v >= num_vertices {
                return Err(GraphError::VertexOutOfRange { id: v, n: num_vertices });
            }
        }
        // Counting sort on the source column.
        let mut counts = vec![0usize; n + 1];
        for &s in src {
            counts[s as usize + 1] += 1;
        }
        for v in 0..n {
            counts[v + 1] += counts[v];
        }
        let offsets = counts.clone();
        let mut targets = vec![0u32; src.len()];
        let mut edge_rows = vec![0u32; src.len()];
        let mut cursor = counts;
        for (row, (&s, &d)) in src.iter().zip(dst).enumerate() {
            let slot = cursor[s as usize];
            cursor[s as usize] += 1;
            targets[slot] = d;
            edge_rows[slot] = row as u32;
        }
        Ok(Csr { offsets, targets, edge_rows })
    }

    /// [`Csr::from_edges`] with a parallel counting sort over edge chunks.
    ///
    /// The classic two-pass scheme: every chunk counts its sources into a
    /// local histogram; a per-vertex exclusive prefix across the chunk
    /// histograms gives each chunk its disjoint cursor base; the scatter
    /// pass then places every chunk's edges without synchronization. Chunks
    /// are contiguous in row order, so the result — including the stable
    /// within-source row order — is **bit-for-bit identical** to the
    /// sequential build. `threads <= 1` takes the sequential path exactly.
    pub fn from_edges_with_threads(
        num_vertices: u32,
        src: &[u32],
        dst: &[u32],
        threads: usize,
    ) -> Result<Csr> {
        let pool = Pool::new(threads);
        if pool.is_sequential() || pool.chunks(src.len().min(dst.len())).len() <= 1 {
            return Csr::from_edges(num_vertices, src, dst);
        }
        if src.len() != dst.len() {
            return Err(GraphError::LengthMismatch(format!(
                "src has {} entries, dst has {}",
                src.len(),
                dst.len()
            )));
        }
        let n = num_vertices as usize;
        let m = src.len();
        // Validation in two passes (all of src, then all of dst), so the
        // reported error matches the sequential scan order.
        for column in [src, dst] {
            pool.try_map_chunks(m, |range| {
                for &v in &column[range] {
                    if v >= num_vertices {
                        return Err(GraphError::VertexOutOfRange { id: v, n: num_vertices });
                    }
                }
                Ok(())
            })?;
        }

        // One chunk list drives both the histogram and the scatter pass;
        // the cursor bases below are only valid for exactly these ranges.
        let chunks = pool.chunks(m);
        // Pass 1: per-chunk source histograms.
        let mut histograms: Vec<Vec<usize>> = pool.map(chunks.len(), |ci| {
            let mut counts = vec![0usize; n];
            for &s in &src[chunks[ci].clone()] {
                counts[s as usize] += 1;
            }
            counts
        });
        // Global offsets (prefix sum over the summed histograms).
        let mut offsets = vec![0usize; n + 1];
        for h in &histograms {
            for (v, &c) in h.iter().enumerate() {
                offsets[v + 1] += c;
            }
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        // Exclusive prefix across chunks: histogram `c` becomes chunk `c`'s
        // cursor base (sequential order: all earlier chunks' edges of the
        // same source come first — exactly the stable sequential placement).
        let mut running: Vec<usize> = offsets[..n].to_vec();
        for h in histograms.iter_mut() {
            for (hv, rv) in h.iter_mut().zip(running.iter_mut()) {
                let count = *hv;
                *hv = *rv;
                *rv += count;
            }
        }
        // Pass 2: scatter. Slot ranges are disjoint across chunks by
        // construction of the cursor bases.
        let mut targets = vec![0u32; m];
        let mut edge_rows = vec![0u32; m];
        {
            let targets_out = SharedSlice::new(&mut targets);
            let rows_out = SharedSlice::new(&mut edge_rows);
            let bases: Vec<std::sync::Mutex<Vec<usize>>> =
                histograms.into_iter().map(std::sync::Mutex::new).collect();
            pool.map(chunks.len(), |ci| {
                let mut cursor = bases[ci].lock().expect("cursor lock");
                for row in chunks[ci].clone() {
                    let s = src[row] as usize;
                    let slot = cursor[s];
                    cursor[s] += 1;
                    // SAFETY: counting-sort slots are disjoint across rows
                    // and chunks; each slot is written exactly once.
                    unsafe {
                        targets_out.write(slot, dst[row]);
                        rows_out.write(slot, row as u32);
                    }
                }
            });
        }
        Ok(Csr { offsets, targets, edge_rows })
    }

    /// Borrow the raw CSR arrays `(offsets, targets, edge_rows)` for
    /// serialization.
    pub fn raw_parts(&self) -> (&[usize], &[u32], &[u32]) {
        (&self.offsets, &self.targets, &self.edge_rows)
    }

    /// Reassemble a CSR from raw arrays (the inverse of
    /// [`Csr::raw_parts`]), validating the structural invariants so corrupt
    /// serialized data cannot produce a panicking graph.
    pub fn from_raw_parts(
        offsets: Vec<usize>,
        targets: Vec<u32>,
        edge_rows: Vec<u32>,
    ) -> Result<Csr> {
        if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::LengthMismatch(
                "CSR offsets must start at 0 and be non-decreasing".into(),
            ));
        }
        let m = *offsets.last().unwrap_or(&0);
        if targets.len() != m || edge_rows.len() != m {
            return Err(GraphError::LengthMismatch(format!(
                "CSR declares {m} edges but has {} targets and {} edge rows",
                targets.len(),
                edge_rows.len()
            )));
        }
        let n = (offsets.len() - 1) as u32;
        if let Some(&bad) = targets.iter().find(|&&t| t >= n) {
            return Err(GraphError::VertexOutOfRange { id: bad, n });
        }
        Ok(Csr { offsets, targets, edge_rows })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of vertex `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The CSR slot range of vertex `v`'s out-edges.
    pub fn edge_range(&self, v: u32) -> std::ops::Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Destination vertex stored at CSR slot `slot`.
    pub fn target(&self, slot: usize) -> u32 {
        self.targets[slot]
    }

    /// Original edge-table row id stored at CSR slot `slot`.
    pub fn edge_row(&self, slot: usize) -> u32 {
        self.edge_rows[slot]
    }

    /// Iterate `(csr_slot, target_vertex)` over the out-edges of `v`.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.edge_range(v).map(move |slot| (slot, self.targets[slot]))
    }

    /// Replace the per-slot edge-row ids (used by
    /// [`reverse_csr`](crate::bidir::reverse_csr) to keep original row ids
    /// through a reversal).
    ///
    /// # Panics
    /// Panics when `rows` does not have one entry per edge.
    pub fn with_edge_rows(mut self, rows: Vec<u32>) -> Csr {
        assert_eq!(rows.len(), self.num_edges(), "one row id per CSR slot");
        self.edge_rows = rows;
        self
    }

    /// Permute a per-row weight array into CSR slot order, validating the
    /// strict positivity contract of `CHEAPEST SUM` on the way.
    ///
    /// `weights[row]` is the weight of original edge row `row`; the result
    /// is aligned with [`Csr::targets`].
    pub fn permute_weights_int(&self, weights: &[i64]) -> Result<Vec<i64>> {
        self.permute_weights_int_with_threads(weights, 1)
    }

    /// [`Csr::permute_weights_int`] with the gather chunked over a scoped
    /// worker pool. Each chunk of CSR slots gathers (and validates) its
    /// range independently; the reported error is the one the sequential
    /// slot-order scan would surface (the failing chunks all finish, and
    /// the earliest chunk's first offending slot wins), so the output —
    /// values and errors alike — is identical to the sequential gather.
    pub fn permute_weights_int_with_threads(
        &self,
        weights: &[i64],
        threads: usize,
    ) -> Result<Vec<i64>> {
        self.permute_weights_with(weights, threads, |w| *w > 0)
    }

    /// Floating-point variant of [`Csr::permute_weights_int`]. NaN weights
    /// are rejected alongside non-positive ones.
    pub fn permute_weights_float(&self, weights: &[f64]) -> Result<Vec<f64>> {
        self.permute_weights_float_with_threads(weights, 1)
    }

    /// [`Csr::permute_weights_float`] with the chunked parallel gather of
    /// [`Csr::permute_weights_int_with_threads`] (same error semantics).
    pub fn permute_weights_float_with_threads(
        &self,
        weights: &[f64],
        threads: usize,
    ) -> Result<Vec<f64>> {
        self.permute_weights_with(weights, threads, |w| *w > 0.0 && !w.is_nan())
    }

    /// The shared gather: `out[slot] = weights[edge_rows[slot]]`, chunked
    /// over the pool, rejecting any weight failing `valid`.
    fn permute_weights_with<T: Copy + Send + Sync + ToString>(
        &self,
        weights: &[T],
        threads: usize,
        valid: impl Fn(&T) -> bool + Sync,
    ) -> Result<Vec<T>> {
        let m = self.num_edges();
        if weights.len() != m {
            return Err(GraphError::LengthMismatch(format!(
                "{} weights for {} edges",
                weights.len(),
                m
            )));
        }
        let pool = Pool::new(threads);
        if pool.is_sequential() || pool.chunks(m).len() <= 1 {
            let mut out = Vec::with_capacity(m);
            for &row in &self.edge_rows {
                let w = weights[row as usize];
                if !valid(&w) {
                    return Err(GraphError::NonPositiveWeight {
                        edge_row: row,
                        weight: w.to_string(),
                    });
                }
                out.push(w);
            }
            return Ok(out);
        }
        let mut out = vec![weights[0]; m];
        // Every chunk runs to completion (no fail-fast): chunk results are
        // inspected in slot order below, so the winning error is exactly
        // the first offending slot a sequential scan would report.
        let results: Vec<Result<()>> = {
            let shared = SharedSlice::new(&mut out);
            pool.map_chunks(m, |range| {
                for slot in range {
                    let row = self.edge_rows[slot];
                    let w = weights[row as usize];
                    if !valid(&w) {
                        return Err(GraphError::NonPositiveWeight {
                            edge_row: row,
                            weight: w.to_string(),
                        });
                    }
                    // SAFETY: chunks partition the slot range; each slot is
                    // written by exactly one chunk.
                    unsafe { shared.write(slot, w) };
                }
                Ok(())
            })
        };
        for r in results {
            r?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 5-vertex diamond used across this crate's tests:
    /// 0->1, 0->2, 1->3, 2->3, 3->4.
    pub(crate) fn diamond() -> Csr {
        Csr::from_edges(5, &[0, 0, 1, 2, 3], &[1, 2, 3, 3, 4]).unwrap()
    }

    #[test]
    fn builds_adjacency_correctly() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(4), 0);
        let mut n0: Vec<u32> = g.neighbors(0).map(|(_, t)| t).collect();
        n0.sort();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(g.neighbors(3).map(|(_, t)| t).collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn edge_rows_map_back_to_input_rows() {
        let g = diamond();
        // Each CSR slot's (source via offsets, target) must match the input
        // edge at edge_rows[slot].
        let src = [0u32, 0, 1, 2, 3];
        let dst = [1u32, 2, 3, 3, 4];
        for v in 0..g.num_vertices() {
            for (slot, t) in g.neighbors(v) {
                let row = g.edge_row(slot) as usize;
                assert_eq!(src[row], v);
                assert_eq!(dst[row], t);
            }
        }
    }

    #[test]
    fn preserves_duplicates_and_self_loops() {
        let g = Csr::from_edges(2, &[0, 0, 1], &[1, 1, 1]).unwrap();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(1), 1); // self loop 1->1
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn rejects_out_of_range_vertices() {
        let err = Csr::from_edges(2, &[0, 5], &[1, 1]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { id: 5, n: 2 }));
    }

    #[test]
    fn rejects_ragged_input() {
        assert!(matches!(Csr::from_edges(2, &[0], &[1, 0]), Err(GraphError::LengthMismatch(_))));
    }

    #[test]
    fn weight_permutation_aligns_with_slots() {
        let g = diamond();
        // weight of row i is (i+1)*10
        let weights: Vec<i64> = (0..5).map(|i| (i + 1) * 10).collect();
        let permuted = g.permute_weights_int(&weights).unwrap();
        for slot in 0..g.num_edges() {
            assert_eq!(permuted[slot], weights[g.edge_row(slot) as usize]);
        }
    }

    #[test]
    fn weight_positivity_enforced() {
        let g = diamond();
        let err = g.permute_weights_int(&[1, 2, 0, 4, 5]).unwrap_err();
        assert!(matches!(err, GraphError::NonPositiveWeight { edge_row: 2, .. }));
        let err = g.permute_weights_float(&[1.0, 2.0, 3.0, -0.5, 5.0]).unwrap_err();
        assert!(matches!(err, GraphError::NonPositiveWeight { edge_row: 3, .. }));
        let err = g.permute_weights_float(&[1.0, 2.0, 3.0, f64::NAN, 5.0]).unwrap_err();
        assert!(matches!(err, GraphError::NonPositiveWeight { edge_row: 3, .. }));
    }

    #[test]
    fn parallel_permute_matches_sequential() {
        // Large enough that a 4-wide pool actually splits into chunks.
        let m = 4096u32;
        let n = 64u32;
        let src: Vec<u32> = (0..m).map(|i| (i * 7 + 3) % n).collect();
        let dst: Vec<u32> = (0..m).map(|i| (i * 13 + 1) % n).collect();
        let g = Csr::from_edges(n, &src, &dst).unwrap();
        let wi: Vec<i64> = (0..m as i64).map(|i| i % 97 + 1).collect();
        let wf: Vec<f64> = wi.iter().map(|&w| w as f64 * 0.5).collect();
        let seq_i = g.permute_weights_int(&wi).unwrap();
        let seq_f = g.permute_weights_float(&wf).unwrap();
        for threads in [2, 4, 8] {
            assert_eq!(g.permute_weights_int_with_threads(&wi, threads).unwrap(), seq_i);
            assert_eq!(g.permute_weights_float_with_threads(&wf, threads).unwrap(), seq_f);
        }
    }

    #[test]
    fn parallel_permute_reports_sequential_error() {
        // Two offending rows in different chunks: the parallel gather must
        // report the same (slot-order-first) error as the sequential scan.
        let m = 4096u32;
        let n = 64u32;
        let src: Vec<u32> = (0..m).map(|i| (i * 5 + 2) % n).collect();
        let dst: Vec<u32> = (0..m).map(|i| (i * 11 + 9) % n).collect();
        let g = Csr::from_edges(n, &src, &dst).unwrap();
        let mut wi: Vec<i64> = vec![1; m as usize];
        wi[100] = 0;
        wi[4000] = -5;
        let seq = g.permute_weights_int(&wi).unwrap_err();
        for threads in [2, 4, 8] {
            let par = g.permute_weights_int_with_threads(&wi, threads).unwrap_err();
            assert_eq!(par, seq, "threads {threads}");
        }
        let mut wf: Vec<f64> = vec![1.0; m as usize];
        wf[70] = f64::NAN;
        wf[3900] = -1.0;
        let seq = g.permute_weights_float(&wf).unwrap_err();
        for threads in [2, 4, 8] {
            let par = g.permute_weights_float_with_threads(&wf, threads).unwrap_err();
            assert_eq!(par, seq, "threads {threads}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[], &[]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices_have_no_neighbors() {
        let g = Csr::from_edges(4, &[0], &[1]).unwrap();
        assert_eq!(g.out_degree(2), 0);
        assert_eq!(g.out_degree(3), 0);
    }
}
