//! A monotone radix priority queue ("radix queue").
//!
//! This is the structure the paper pairs with Dijkstra for weighted shortest
//! paths ("the Dijkstra algorithm combined with the Radix Queue [11]",
//! §3.2; [11] = Ahuja, Mehlhorn, Orlin, Tarjan 1990, *Faster algorithms for
//! the shortest path problem*).
//!
//! The queue is **monotone**: every pushed key must be `>=` the key most
//! recently popped. Dijkstra with non-negative weights satisfies this
//! naturally. Operations are `O(1)` amortized push and `O(B)` amortized pop
//! for `B = 65` buckets, independent of the number of stored items.

/// A monotone radix heap mapping `u64` keys to values of type `T`.
#[derive(Debug)]
pub struct RadixHeap<T> {
    /// `buckets[i]` holds keys that differ from `last` first at bit `i-1`
    /// (bucket 0 holds keys equal to `last`).
    buckets: Vec<Vec<(u64, T)>>,
    /// The key most recently popped (the monotonicity floor).
    last: u64,
    len: usize,
}

impl<T> Default for RadixHeap<T> {
    fn default() -> Self {
        RadixHeap::new()
    }
}

impl<T> RadixHeap<T> {
    /// An empty heap with monotonicity floor 0.
    pub fn new() -> RadixHeap<T> {
        RadixHeap { buckets: (0..=64).map(|_| Vec::new()).collect(), last: 0, len: 0 }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The monotonicity floor: the key most recently popped.
    pub fn last_popped(&self) -> u64 {
        self.last
    }

    fn bucket_of(&self, key: u64) -> usize {
        // Keys equal to `last` go to bucket 0; otherwise the index of the
        // highest differing bit plus one.
        (64 - (key ^ self.last).leading_zeros()) as usize
    }

    /// Insert `(key, value)`.
    ///
    /// # Panics
    /// Panics if `key` is smaller than the last popped key (monotonicity
    /// violation) — in Dijkstra this would mean a negative edge weight,
    /// which the engine rejects before ever reaching the heap.
    pub fn push(&mut self, key: u64, value: T) {
        assert!(
            key >= self.last,
            "radix heap monotonicity violated: push {key} after pop {}",
            self.last
        );
        let b = self.bucket_of(key);
        self.buckets[b].push((key, value));
        self.len += 1;
    }

    /// Remove and return an item with the minimum key, or `None` when empty.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        if self.buckets[0].is_empty() {
            // Find the first non-empty bucket, locate its minimum key, make
            // that the new floor and redistribute: every item lands in a
            // strictly smaller bucket, which is what makes pops amortize.
            let b = self.buckets.iter().position(|bk| !bk.is_empty()).expect("len > 0");
            let min_key = self.buckets[b].iter().map(|(k, _)| *k).min().expect("non-empty");
            self.last = min_key;
            let drained = std::mem::take(&mut self.buckets[b]);
            for (k, v) in drained {
                let nb = self.bucket_of(k);
                debug_assert!(nb < b || b == 0);
                self.buckets[nb].push((k, v));
            }
        }
        self.len -= 1;
        let item = self.buckets[0].pop().expect("bucket 0 refilled above");
        self.last = item.0;
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_nondecreasing_key_order() {
        let mut h = RadixHeap::new();
        for (i, k) in [5u64, 1, 9, 1, 3, 100, 42].into_iter().enumerate() {
            h.push(k, i);
        }
        let mut keys = Vec::new();
        while let Some((k, _)) = h.pop() {
            keys.push(k);
        }
        assert_eq!(keys, vec![1, 1, 3, 5, 9, 42, 100]);
    }

    #[test]
    fn interleaved_push_pop_monotone() {
        let mut h = RadixHeap::new();
        h.push(2, "a");
        h.push(7, "b");
        assert_eq!(h.pop().unwrap().0, 2);
        // After popping 2 we may push any key >= 2.
        h.push(3, "c");
        h.push(2, "d");
        assert_eq!(h.pop().unwrap().0, 2);
        assert_eq!(h.pop().unwrap().0, 3);
        assert_eq!(h.pop().unwrap().0, 7);
        assert!(h.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "monotonicity violated")]
    fn push_below_floor_panics() {
        let mut h = RadixHeap::new();
        h.push(10, ());
        h.pop();
        h.push(5, ());
    }

    #[test]
    fn handles_large_keys() {
        let mut h = RadixHeap::new();
        h.push(u64::MAX - 1, 1);
        h.push(1u64 << 63, 2);
        h.push(u64::MAX - 1, 3);
        assert_eq!(h.pop().unwrap().0, 1u64 << 63);
        assert_eq!(h.pop().unwrap().0, u64::MAX - 1);
        assert_eq!(h.pop().unwrap().0, u64::MAX - 1);
        assert!(h.is_empty());
    }

    #[test]
    fn zero_keys_work() {
        let mut h = RadixHeap::new();
        h.push(0, "x");
        h.push(0, "y");
        assert_eq!(h.pop().unwrap().0, 0);
        assert_eq!(h.pop().unwrap().0, 0);
        assert!(h.pop().is_none());
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut h = RadixHeap::new();
        assert!(h.is_empty());
        h.push(1, ());
        h.push(2, ());
        assert_eq!(h.len(), 2);
        h.pop();
        assert_eq!(h.len(), 1);
        h.pop();
        assert!(h.is_empty());
    }

    #[test]
    fn matches_binary_heap_on_random_monotone_sequence() {
        use rand::prelude::*;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut rng = StdRng::seed_from_u64(42);
        let mut radix = RadixHeap::new();
        let mut binary = BinaryHeap::new();
        let mut floor = 0u64;
        for _ in 0..10_000 {
            if rng.gen_bool(0.6) || radix.is_empty() {
                let key = floor + rng.gen_range(0..1000);
                radix.push(key, ());
                binary.push(Reverse(key));
            } else {
                let a = radix.pop().map(|(k, _)| k);
                let b = binary.pop().map(|Reverse(k)| k);
                assert_eq!(a, b);
                floor = a.unwrap();
            }
        }
        while let Some((k, _)) = radix.pop() {
            assert_eq!(Some(k), binary.pop().map(|Reverse(k)| k));
        }
        assert!(binary.is_empty());
    }
}
