//! Bidirectional BFS for single-pair unweighted shortest paths.
//!
//! The paper's §4 notes its BFS was "still largely unoptimized" and that
//! the authors "expect in the future to significantly improve the BFS
//! implementation". This module provides that improvement for the
//! single-pair case: alternating forward/backward frontier expansion
//! explores `O(b^(d/2))` vertices instead of `O(b^d)`.
//!
//! It requires the reverse graph, which [`reverse_csr`] builds once (and
//! which a graph index can cache alongside the forward CSR).

use crate::csr::Csr;
use crate::{NO_EDGE, NO_VERTEX};
use gsql_parallel::{Pool, SharedSlice};

/// Build the reverse graph: edge `u -> v` becomes `v -> u`, keeping the
/// same original edge-row ids (so paths found backwards still reference the
/// original edge table).
pub fn reverse_csr(graph: &Csr) -> Csr {
    reverse_csr_with_threads(graph, 1)
}

/// [`reverse_csr`] over a scoped worker pool: the flipped edge list, the
/// counting-sort rebuild ([`Csr::from_edges_with_threads`]) and the
/// row-id remap all parallelize over disjoint ranges, so the result is
/// bit-for-bit identical to the sequential build. `threads <= 1` is the
/// exact sequential path.
pub fn reverse_csr_with_threads(graph: &Csr, threads: usize) -> Csr {
    let m = graph.num_edges();
    let n = graph.num_vertices();
    let pool = Pool::new(threads);

    // Flip the edge list, slot-major: position p holds the reverse of CSR
    // slot p, exactly the order the sequential vertex walk would produce.
    let mut src = vec![0u32; m];
    let mut dst = vec![0u32; m];
    let mut slot_order = vec![0u32; m];
    {
        let src_out = SharedSlice::new(&mut src);
        let order_out = SharedSlice::new(&mut slot_order);
        pool.for_each_chunk(m, |range| {
            for p in range {
                // SAFETY: each position written once, by this chunk only.
                unsafe {
                    src_out.write(p, graph.target(p));
                    order_out.write(p, graph.edge_row(p));
                }
            }
        });
        let dst_out = SharedSlice::new(&mut dst);
        pool.for_each_chunk(n as usize, |range| {
            for v in range {
                for p in graph.edge_range(v as u32) {
                    // SAFETY: slot ranges of distinct vertices are disjoint.
                    unsafe { dst_out.write(p, v as u32) };
                }
            }
        });
    }

    // `Csr::from_edges` assigns row id = position in the input arrays; we
    // need the *original* row ids, so build a CSR over positions and remap.
    let csr = Csr::from_edges_with_threads(n, &src, &dst, threads).expect("valid reversal");
    let rows: Vec<u32> = pool
        .map_chunks(m, |range| {
            range.map(|pos| slot_order[csr.edge_row(pos) as usize]).collect::<Vec<u32>>()
        })
        .into_iter()
        .flatten()
        .collect();
    csr.with_edge_rows(rows)
}

/// Result of a bidirectional search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BidirResult {
    /// Hop count of the shortest path.
    pub dist: u32,
    /// Original edge-row ids along one shortest path, source → dest order.
    pub path: Vec<u32>,
    /// Vertices labelled across both directions — the work metric reported
    /// to the observability layer.
    pub settled: u32,
}

/// Bidirectional BFS from `source` to `dest` over `forward` and its
/// reversal `backward` (as built by [`reverse_csr`]).
///
/// Returns `None` when `dest` is unreachable. `source == dest` yields the
/// empty path, mirroring the engine's zero-hop semantics.
pub fn bidirectional_bfs(
    forward: &Csr,
    backward: &Csr,
    source: u32,
    dest: u32,
) -> Option<BidirResult> {
    let n = forward.num_vertices() as usize;
    debug_assert_eq!(backward.num_vertices(), forward.num_vertices());
    if source == dest {
        return Some(BidirResult { dist: 0, path: Vec::new(), settled: 1 });
    }
    // dist/parent per direction; parent_edge stores ORIGINAL edge rows.
    let mut dist_f = vec![u32::MAX; n];
    let mut dist_b = vec![u32::MAX; n];
    let mut par_f = vec![NO_VERTEX; n];
    let mut par_b = vec![NO_VERTEX; n];
    let mut edge_f = vec![NO_EDGE; n];
    let mut edge_b = vec![NO_EDGE; n];
    dist_f[source as usize] = 0;
    dist_b[dest as usize] = 0;
    let mut frontier_f = vec![source];
    let mut frontier_b = vec![dest];
    let mut settled: u32 = 2;

    // Best meeting so far: (total distance, meeting vertex).
    let mut best: Option<(u32, u32)> = None;
    let mut depth_f = 0u32;
    let mut depth_b = 0u32;

    while !frontier_f.is_empty() && !frontier_b.is_empty() {
        // The sum of completed depths bounds any undiscovered path; once a
        // meeting is at most that bound it is optimal.
        if let Some((d, _)) = best {
            if d <= depth_f + depth_b + 1 {
                break;
            }
        }
        // Expand the smaller frontier (classic balancing heuristic).
        let expand_forward = frontier_f.len() <= frontier_b.len();
        let (graph, frontier, dist_mine, dist_other, par, edge, depth) = if expand_forward {
            (forward, &mut frontier_f, &mut dist_f, &dist_b, &mut par_f, &mut edge_f, &mut depth_f)
        } else {
            (backward, &mut frontier_b, &mut dist_b, &dist_f, &mut par_b, &mut edge_b, &mut depth_b)
        };
        let mut next = Vec::new();
        for &u in frontier.iter() {
            let du = dist_mine[u as usize];
            for (slot, v) in graph.neighbors(u) {
                let vi = v as usize;
                if dist_mine[vi] != u32::MAX {
                    continue;
                }
                dist_mine[vi] = du + 1;
                settled += 1;
                par[vi] = u;
                edge[vi] = graph.edge_row(slot);
                if dist_other[vi] != u32::MAX {
                    let total = dist_mine[vi] + dist_other[vi];
                    if best.is_none_or(|(b, _)| total < b) {
                        best = Some((total, v));
                    }
                }
                next.push(v);
            }
        }
        *frontier = next;
        *depth += 1;
    }

    let (dist, meet) = best?;
    // Stitch: source ~> meet (forward parents, reversed walk), then
    // meet ~> dest (backward parents walk forward).
    let mut path = Vec::with_capacity(dist as usize);
    let mut v = meet;
    while v != source {
        path.push(edge_f[v as usize]);
        v = par_f[v as usize];
    }
    path.reverse();
    let mut v = meet;
    while v != dest {
        path.push(edge_b[v as usize]);
        v = par_b[v as usize];
    }
    Some(BidirResult { dist, path, settled })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;

    fn diamond() -> Csr {
        Csr::from_edges(5, &[0, 0, 1, 2, 3], &[1, 2, 3, 3, 4]).unwrap()
    }

    #[test]
    fn reverse_preserves_edge_rows() {
        let g = diamond();
        let r = reverse_csr(&g);
        assert_eq!(r.num_edges(), g.num_edges());
        // Every reverse edge (v -> u, row) corresponds to a forward edge
        // (u -> v) with the same row id.
        for v in 0..r.num_vertices() {
            for (slot, u) in r.neighbors(v) {
                let row = r.edge_row(slot);
                // Find the forward edge with that row id.
                let mut found = false;
                for fu in 0..g.num_vertices() {
                    for (fslot, fv) in g.neighbors(fu) {
                        if g.edge_row(fslot) == row {
                            assert_eq!((fu, fv), (u, v));
                            found = true;
                        }
                    }
                }
                assert!(found, "row {row} not found forward");
            }
        }
    }

    #[test]
    fn matches_unidirectional_on_diamond() {
        let g = diamond();
        let rev = reverse_csr(&g);
        let r = bidirectional_bfs(&g, &rev, 0, 4).unwrap();
        assert_eq!(r.dist, 3);
        assert_eq!(r.path.len(), 3);
        // The path edges must chain 0 ~> 4 in the forward graph.
        let src = [0u32, 0, 1, 2, 3];
        let dst = [1u32, 2, 3, 3, 4];
        let mut at = 0;
        for &row in &r.path {
            assert_eq!(src[row as usize], at);
            at = dst[row as usize];
        }
        assert_eq!(at, 4);
    }

    #[test]
    fn self_pair_and_unreachable() {
        let g = diamond();
        let rev = reverse_csr(&g);
        assert_eq!(bidirectional_bfs(&g, &rev, 2, 2).unwrap().dist, 0);
        assert!(bidirectional_bfs(&g, &rev, 4, 0).is_none());
    }

    #[test]
    fn random_graphs_match_unidirectional_bfs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..40 {
            let n: u32 = rng.gen_range(2..40);
            let m: usize = rng.gen_range(1..150);
            let src: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
            let dst: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
            let g = Csr::from_edges(n, &src, &dst).unwrap();
            let rev = reverse_csr(&g);
            for _ in 0..10 {
                let s = rng.gen_range(0..n);
                let d = rng.gen_range(0..n);
                let uni = bfs(&g, s, &[]);
                let bi = bidirectional_bfs(&g, &rev, s, d);
                match bi {
                    None => assert_eq!(uni.dist[d as usize], u32::MAX, "pair ({s},{d})"),
                    Some(r) => {
                        assert_eq!(r.dist, uni.dist[d as usize], "pair ({s},{d})");
                        // Path validity: chains s ~> d with dist edges.
                        assert_eq!(r.path.len() as u32, r.dist);
                        let mut at = s;
                        for &row in &r.path {
                            assert_eq!(src[row as usize], at);
                            at = dst[row as usize];
                        }
                        assert_eq!(at, d);
                    }
                }
            }
        }
    }
}
