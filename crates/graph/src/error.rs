//! Error type for the graph runtime.

use std::fmt;

/// Errors raised by the graph runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A `CHEAPEST SUM` weight evaluated to a value that is not strictly
    /// positive. The paper mandates a runtime exception in this case
    /// ("Its value must always be strictly greater than 0, otherwise a
    /// runtime exception is raised", §2).
    NonPositiveWeight {
        /// Original edge-table row id of the offending edge.
        edge_row: u32,
        /// The offending weight rendered as text.
        weight: String,
    },
    /// A NULL weight was encountered (same contract as non-positive).
    NullWeight {
        /// Original edge-table row id of the offending edge.
        edge_row: u32,
    },
    /// A vertex id out of the dense domain was supplied.
    VertexOutOfRange {
        /// The offending id.
        id: u32,
        /// Number of vertices in the graph.
        n: u32,
    },
    /// Mismatched array lengths in the runtime invocation.
    LengthMismatch(String),
    /// A batch traversal was abandoned because its deadline passed (the
    /// engine's statement timeout). Raised between per-source traversals,
    /// so already-computed groups are discarded, never returned partially.
    DeadlineExceeded,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NonPositiveWeight { edge_row, weight } => write!(
                f,
                "CHEAPEST SUM weight must be strictly greater than 0, \
                 but edge row {edge_row} has weight {weight}"
            ),
            GraphError::NullWeight { edge_row } => {
                write!(f, "CHEAPEST SUM weight is NULL at edge row {edge_row}")
            }
            GraphError::VertexOutOfRange { id, n } => {
                write!(f, "vertex id {id} out of range (|V| = {n})")
            }
            GraphError::LengthMismatch(msg) => write!(f, "length mismatch: {msg}"),
            GraphError::DeadlineExceeded => {
                write!(f, "graph traversal abandoned: statement deadline exceeded")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_contract() {
        let e = GraphError::NonPositiveWeight { edge_row: 3, weight: "-1".into() };
        assert!(e.to_string().contains("strictly greater than 0"));
        assert!(e.to_string().contains("edge row 3"));
    }
}
