//! Property-based tests for the graph runtime.
//!
//! Strategy: generate random directed graphs (edge lists over a small dense
//! vertex domain) plus random weights, then check the algorithmic invariants
//! that the paper's runtime relies on.

use gsql_graph::{bfs, dijkstra_float, dijkstra_int, BatchComputer, Csr, RadixHeap, WeightSpec};
use proptest::prelude::*;

/// A random graph: n in 1..24, up to 80 edges, weights in 1..50.
fn graph_strategy() -> impl Strategy<Value = (u32, Vec<(u32, u32, i64)>)> {
    (1u32..24).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 1i64..50).prop_map(|(s, d, w)| (s, d, w));
        (Just(n), prop::collection::vec(edge, 0..80))
    })
}

fn build(n: u32, edges: &[(u32, u32, i64)]) -> (Csr, Vec<i64>) {
    let src: Vec<u32> = edges.iter().map(|e| e.0).collect();
    let dst: Vec<u32> = edges.iter().map(|e| e.1).collect();
    let w: Vec<i64> = edges.iter().map(|e| e.2).collect();
    (Csr::from_edges(n, &src, &dst).unwrap(), w)
}

/// Reference shortest paths: Bellman-Ford (no negative weights here, so it
/// terminates in n rounds and gives exact distances).
fn bellman_ford(n: u32, edges: &[(u32, u32, i64)], source: u32) -> Vec<Option<i64>> {
    let mut dist: Vec<Option<i64>> = vec![None; n as usize];
    dist[source as usize] = Some(0);
    for _ in 0..n {
        let mut changed = false;
        for &(s, d, w) in edges {
            if let Some(ds) = dist[s as usize] {
                let nd = ds + w;
                if dist[d as usize].is_none_or(|old| nd < old) {
                    dist[d as usize] = Some(nd);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dijkstra with the radix queue must agree with Bellman-Ford exactly.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn dijkstra_int_matches_bellman_ford((n, edges) in graph_strategy()) {
        let (g, w) = build(n, &edges);
        let wp = g.permute_weights_int(&w).unwrap();
        for source in 0..n.min(4) {
            let r = dijkstra_int(&g, source, &[], &wp);
            let reference = bellman_ford(n, &edges, source);
            for v in 0..n as usize {
                match reference[v] {
                    None => prop_assert_eq!(r.dist[v], u64::MAX),
                    Some(d) => prop_assert_eq!(r.dist[v], d as u64),
                }
            }
        }
    }

    /// The float variant agrees with the int variant on integral weights.
    #[test]
    fn dijkstra_float_matches_int((n, edges) in graph_strategy()) {
        let (g, w) = build(n, &edges);
        let wi = g.permute_weights_int(&w).unwrap();
        let wf = g.permute_weights_float(&w.iter().map(|&x| x as f64).collect::<Vec<_>>()).unwrap();
        let ri = dijkstra_int(&g, 0, &[], &wi);
        let rf = dijkstra_float(&g, 0, &[], &wf);
        for v in 0..n as usize {
            if ri.dist[v] == u64::MAX {
                prop_assert!(rf.dist[v].is_infinite());
            } else {
                prop_assert_eq!(ri.dist[v] as f64, rf.dist[v]);
            }
        }
    }

    /// BFS equals Dijkstra on unit weights (the paper's `CHEAPEST SUM(1)`).
    #[test]
    fn bfs_equals_unit_weight_dijkstra((n, edges) in graph_strategy()) {
        let (g, _) = build(n, &edges);
        let unit = g.permute_weights_int(&vec![1i64; edges.len()]).unwrap();
        let b = bfs(&g, 0, &[]);
        let d = dijkstra_int(&g, 0, &[], &unit);
        for v in 0..n as usize {
            if b.dist[v] == u32::MAX {
                prop_assert_eq!(d.dist[v], u64::MAX);
            } else {
                prop_assert_eq!(b.dist[v] as u64, d.dist[v]);
            }
        }
    }

    /// Batched results equal per-pair results, and reported paths are valid:
    /// consecutive edges chain source->dest and the cost sums match.
    #[test]
    fn batch_paths_are_valid((n, edges) in graph_strategy(),
                             pair_seed in prop::collection::vec((0u32..24, 0u32..24), 1..12)) {
        let (g, w) = build(n, &edges);
        let pairs: Vec<(u32, u32)> =
            pair_seed.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let spec = WeightSpec::Int(w.clone());
        let computer = BatchComputer::new(&g);
        let batch = computer.compute(&pairs, &spec, true).unwrap();
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let single = computer.shortest_path(s, t, &spec).unwrap();
            prop_assert_eq!(batch[i].reachable, single.reachable);
            prop_assert_eq!(batch[i].cost.map(|c| c.as_f64()), single.cost.map(|c| c.as_f64()));
            if let (Some(path), Some(cost)) = (&batch[i].path, batch[i].cost) {
                // Path edges must chain from s to t.
                let mut at = s;
                let mut acc = 0i64;
                for &row in path {
                    let (es, ed, ew) = edges[row as usize];
                    prop_assert_eq!(es, at);
                    at = ed;
                    acc += ew;
                }
                prop_assert_eq!(at, t);
                match cost {
                    gsql_graph::batch::CostValue::Int(c) => prop_assert_eq!(acc, c),
                    _ => prop_assert!(false, "int spec must give int cost"),
                }
            }
        }
    }

    /// Triangle inequality on BFS levels: neighbors differ by at most 1 level
    /// in the direction of the edge.
    #[test]
    fn bfs_levels_respect_edges((n, edges) in graph_strategy()) {
        let (g, _) = build(n, &edges);
        let r = bfs(&g, 0, &[]);
        for &(s, d, _) in &edges {
            let ds = r.dist[s as usize];
            let dd = r.dist[d as usize];
            if ds != u32::MAX {
                prop_assert!(dd != u32::MAX, "edge from reached vertex must reach target");
                prop_assert!(dd <= ds + 1, "edge ({s},{d}): {dd} > {ds}+1");
            }
        }
    }

    /// Parallel and sequential batch execution produce identical results
    /// for random graphs and pair batches across `threads ∈ {1, 2, 8}`.
    #[test]
    fn parallel_batch_matches_sequential(
        (n, edges) in graph_strategy(),
        pair_seed in prop::collection::vec((0u32..24, 0u32..24), 1..40),
    ) {
        let (g, w) = build(n, &edges);
        let pairs: Vec<(u32, u32)> =
            pair_seed.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        for spec in [WeightSpec::Unweighted, WeightSpec::Int(w.clone())] {
            let seq = BatchComputer::new(&g).compute(&pairs, &spec, true).unwrap();
            for threads in [2usize, 8] {
                let par = BatchComputer::new(&g)
                    .with_threads(threads)
                    .compute(&pairs, &spec, true)
                    .unwrap();
                for (p, s) in par.iter().zip(&seq) {
                    prop_assert_eq!(p.reachable, s.reachable);
                    prop_assert_eq!(p.cost.map(|c| c.as_f64()), s.cost.map(|c| c.as_f64()));
                    prop_assert_eq!(&p.path, &s.path);
                }
            }
        }
    }

    /// Morsel-fed batching: splitting a pair batch into arbitrary chunks
    /// (as the engine's pipelined operators do when they feed traversal
    /// batches from morsel output) and concatenating the per-chunk results
    /// is bit-identical to computing the whole batch at once — at every
    /// thread count, for both unweighted and weighted traversals.
    #[test]
    fn chunked_batches_concatenate_to_whole_batch(
        (n, edges) in graph_strategy(),
        pair_seed in prop::collection::vec((0u32..24, 0u32..24), 1..40),
        chunk in 1usize..9,
    ) {
        let (g, w) = build(n, &edges);
        let pairs: Vec<(u32, u32)> =
            pair_seed.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        for spec in [WeightSpec::Unweighted, WeightSpec::Int(w.clone())] {
            let whole = BatchComputer::new(&g).compute(&pairs, &spec, true).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let computer = BatchComputer::new(&g).with_threads(threads);
                let mut chunked = Vec::with_capacity(pairs.len());
                for piece in pairs.chunks(chunk) {
                    chunked.extend(computer.compute(piece, &spec, true).unwrap());
                }
                prop_assert_eq!(chunked.len(), whole.len());
                for (c, s) in chunked.iter().zip(&whole) {
                    prop_assert_eq!(c.reachable, s.reachable);
                    prop_assert_eq!(c.cost.map(|v| v.as_f64()), s.cost.map(|v| v.as_f64()));
                    prop_assert_eq!(&c.path, &s.path);
                }
            }
        }
    }

    /// The parallel counting-sort CSR build is bit-identical to the
    /// sequential build.
    #[test]
    fn parallel_csr_build_matches_sequential((n, edges) in graph_strategy()) {
        let src: Vec<u32> = edges.iter().map(|e| e.0).collect();
        let dst: Vec<u32> = edges.iter().map(|e| e.1).collect();
        let seq = Csr::from_edges(n, &src, &dst).unwrap();
        for threads in [2usize, 8] {
            let par = Csr::from_edges_with_threads(n, &src, &dst, threads).unwrap();
            prop_assert_eq!(&par, &seq);
        }
    }

    /// Radix heap pops keys in nondecreasing order for any monotone input.
    #[test]
    fn radix_heap_sorts(mut keys in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = RadixHeap::new();
        for &k in &keys {
            h.push(k, ());
        }
        keys.sort_unstable();
        let mut popped = Vec::new();
        while let Some((k, ())) = h.pop() {
            popped.push(k);
        }
        prop_assert_eq!(popped, keys);
    }
}
