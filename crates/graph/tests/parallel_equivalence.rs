//! Parallel execution must be indistinguishable from sequential execution:
//! random graphs and pair batches, compared across `threads ∈ {1, 2, 8}`.
//!
//! (The sibling `properties.rs` holds the proptest variants; this file uses
//! the offline `rand` shim so it runs in the default test suite.)

use gsql_graph::{reverse_csr, reverse_csr_with_threads, BatchComputer, Csr, WeightSpec};
use rand::prelude::*;

/// A deterministic random graph with `n` vertices and `m` edges.
fn random_graph(rng: &mut StdRng, n: u32, m: usize) -> (Vec<u32>, Vec<u32>) {
    let src: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
    let dst: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n)).collect();
    (src, dst)
}

#[test]
fn csr_parallel_build_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(42);
    // Sizes straddling the parallel chunking threshold.
    for (n, m) in [(5u32, 12usize), (40, 700), (120, 3000), (400, 20_000)] {
        let (src, dst) = random_graph(&mut rng, n, m);
        let sequential = Csr::from_edges(n, &src, &dst).unwrap();
        for threads in [1, 2, 3, 8] {
            let parallel = Csr::from_edges_with_threads(n, &src, &dst, threads).unwrap();
            assert_eq!(parallel, sequential, "n={n} m={m} threads={threads}");
        }
    }
}

#[test]
fn csr_parallel_build_reports_same_errors() {
    let n = 10u32;
    let m = 5000usize;
    let mut src: Vec<u32> = (0..m as u32).map(|i| i % n).collect();
    let dst: Vec<u32> = (0..m as u32).map(|i| (i + 1) % n).collect();
    src[4000] = 99; // out of range, deep inside a later chunk
    let seq = Csr::from_edges(n, &src, &dst).unwrap_err();
    let par = Csr::from_edges_with_threads(n, &src, &dst, 4).unwrap_err();
    assert_eq!(seq.to_string(), par.to_string());
}

#[test]
fn reverse_csr_parallel_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(7);
    for (n, m) in [(6u32, 15usize), (80, 2000), (300, 12_000)] {
        let (src, dst) = random_graph(&mut rng, n, m);
        let g = Csr::from_edges(n, &src, &dst).unwrap();
        let sequential = reverse_csr(&g);
        for threads in [2, 4, 8] {
            let parallel = reverse_csr_with_threads(&g, threads);
            assert_eq!(parallel, sequential, "n={n} m={m} threads={threads}");
        }
    }
}

#[test]
fn batch_compute_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(2017);
    for _ in 0..25 {
        let n: u32 = rng.gen_range(2..60);
        let m: usize = rng.gen_range(1..300);
        let (src, dst) = random_graph(&mut rng, n, m);
        let g = Csr::from_edges(n, &src, &dst).unwrap();
        let pairs: Vec<(u32, u32)> =
            (0..rng.gen_range(1..80)).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect();
        let weights_int: Vec<i64> = (0..m).map(|_| rng.gen_range(1..50)).collect();
        let weights_float: Vec<f64> = weights_int.iter().map(|&w| w as f64 * 0.5).collect();
        let specs = [
            WeightSpec::Unweighted,
            WeightSpec::Int(weights_int.clone()),
            WeightSpec::Float(weights_float.clone()),
        ];
        for spec in &specs {
            for compute_paths in [false, true] {
                let seq = BatchComputer::new(&g).compute(&pairs, spec, compute_paths).unwrap();
                for threads in [2, 8] {
                    let par = BatchComputer::new(&g)
                        .with_threads(threads)
                        .compute(&pairs, spec, compute_paths)
                        .unwrap();
                    assert_eq!(par.len(), seq.len());
                    for (i, (p, s)) in par.iter().zip(&seq).enumerate() {
                        assert_eq!(p.reachable, s.reachable, "threads {threads} pair {i}");
                        assert_eq!(p.cost, s.cost, "threads {threads} pair {i}");
                        assert_eq!(p.path, s.path, "threads {threads} pair {i}");
                    }
                }
            }
        }
    }
}

/// Morsel-fed batching: splitting a pair batch into fixed-size chunks (the
/// shape the engine's pipelined operators produce when traversal batches
/// are fed from morsel output) and concatenating the per-chunk results is
/// bit-identical to one whole-batch compute, at every thread count.
#[test]
fn chunked_batches_concatenate_to_whole_batch() {
    let mut rng = StdRng::seed_from_u64(90210);
    for _ in 0..10 {
        let n: u32 = rng.gen_range(2..60);
        let m: usize = rng.gen_range(1..300);
        let (src, dst) = random_graph(&mut rng, n, m);
        let g = Csr::from_edges(n, &src, &dst).unwrap();
        let pairs: Vec<(u32, u32)> =
            (0..rng.gen_range(1..80)).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect();
        let weights: Vec<i64> = (0..m).map(|_| rng.gen_range(1..50)).collect();
        for spec in [WeightSpec::Unweighted, WeightSpec::Int(weights.clone())] {
            let whole = BatchComputer::new(&g).compute(&pairs, &spec, true).unwrap();
            for chunk in [1usize, 3, 7, 64] {
                for threads in [1, 2, 4, 8] {
                    let computer = BatchComputer::new(&g).with_threads(threads);
                    let mut chunked = Vec::with_capacity(pairs.len());
                    for piece in pairs.chunks(chunk) {
                        chunked.extend(computer.compute(piece, &spec, true).unwrap());
                    }
                    assert_eq!(chunked.len(), whole.len(), "chunk {chunk} threads {threads}");
                    for (i, (c, s)) in chunked.iter().zip(&whole).enumerate() {
                        assert_eq!(c.reachable, s.reachable, "chunk {chunk} pair {i}");
                        assert_eq!(c.cost, s.cost, "chunk {chunk} pair {i}");
                        assert_eq!(c.path, s.path, "chunk {chunk} pair {i}");
                    }
                }
            }
        }
    }
}

#[test]
fn batch_errors_are_thread_count_independent() {
    let g = Csr::from_edges(4, &[0, 1, 2], &[1, 2, 3]).unwrap();
    for threads in [1, 2, 8] {
        let c = BatchComputer::new(&g).with_threads(threads);
        let err = c.compute(&[(0, 9)], &WeightSpec::Unweighted, true).unwrap_err();
        assert!(err.to_string().contains("out of range"), "threads {threads}: {err}");
        let err = c.compute(&[(0, 1)], &WeightSpec::Int(vec![1, -1, 1]), true).unwrap_err();
        assert!(err.to_string().contains("greater than 0"), "threads {threads}: {err}");
    }
}
