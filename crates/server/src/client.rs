//! A tiny blocking HTTP client — just enough for the integration tests and
//! the `serve_load` benchmark to talk to [`crate::serve`] without an
//! external dependency.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// `GET path` against `addr`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body against `addr`.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<Response> {
    request(addr, "POST", path, Some(body))
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> io::Result<Response> {
    let mut conn = TcpStream::connect(addr)?;
    // A response always comes (503s included); the timeout only guards
    // against a hung server taking the client thread down with it.
    conn.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    // A refused (503) connection may be answered and half-closed before
    // the request is fully written; keep going and read the response.
    let sent = conn
        .write_all(head.as_bytes())
        .and_then(|()| conn.write_all(body.as_bytes()))
        .and_then(|()| conn.flush());
    match read_response(conn) {
        Ok(resp) => Ok(resp),
        Err(e) => sent.and(Err(e)),
    }
}

fn read_response(conn: TcpStream) -> io::Result<Response> {
    let mut reader = BufReader::new(conn);
    let status_line = read_line(&mut reader)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_response(&status_line))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let (name, value) = (name.trim().to_string(), value.trim().to_string());
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    let body = String::from_utf8(body).map_err(|_| bad_response("non-UTF-8 body"))?;
    Ok(Response { status, headers, body })
}

fn read_line(reader: &mut BufReader<TcpStream>) -> io::Result<String> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn bad_response(detail: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed HTTP response: {detail}"))
}
