//! # gsql-server
//!
//! The query-serving tier: an HTTP front-end over a shared
//! [`Database`], turning the embedded engine into something N clients can
//! talk to concurrently. Hand-rolled over `std::net` — the build
//! environment is offline, so there is no hyper/tokio/serde; the HTTP and
//! JSON layers live in [`http`] and [`json`].
//!
//! Architecture:
//!
//! * an **acceptor** thread owns the listener and pushes accepted
//!   connections into a **bounded queue** — when the queue is full the
//!   acceptor answers `503` with `Retry-After` immediately instead of
//!   letting latency collapse (admission control);
//! * a fixed pool of **worker** threads each owns one
//!   [`Database::shared_session`]; workers pull connections, parse one
//!   request, execute, respond, close. Because the sessions share the
//!   database-wide [plan cache](gsql_core::SharedPlanCache), a query text
//!   is bound and optimized once no matter which worker sees it;
//! * every `/query` runs under a **deadline** ([`ServerConfig`]'s cap
//!   and/or the request's `timeout_ms` setting), enforced inside the
//!   executor so runaway traversals are interrupted, not just reported;
//! * [`ServerHandle::shutdown`] drains: stop accepting, let workers finish
//!   every admitted connection, then join. The [`ShutdownReport`] proves
//!   no admitted query was dropped.
//!
//! Endpoints:
//!
//! * `POST /query` — body `{"sql": "...", "params": [...], "settings":
//!   {...}}`; answers `{"columns": [...], "rows": [[...]]}` for result
//!   sets, `{"affected": n}` for DML, `{"ok": true}` otherwise. Add
//!   `"trace": true` to get the statement's span tree inline under
//!   `"trace"` (see `SET trace` in gsql-core).
//! * `GET /health` — liveness probe.
//! * `GET /stats` — plan-cache hit rates, in-flight gauge, per-endpoint
//!   latency counters, and the worker sessions' execution granularity
//!   (`pipeline`, `morsel_rows`, `threads`). A thin JSON view over the
//!   same [`gsql_obs::Registry`] instruments `/metrics` exposes.
//! * `GET /metrics` — every engine and server instrument in Prometheus
//!   text exposition format.
//! * `GET /slowlog` — the bounded ring of slow-query records (`SET
//!   slow_query_ms`), newest last.
//!
//! ```
//! use gsql_core::Database;
//! use gsql_server::{client, serve, ServerConfig};
//! use std::sync::Arc;
//!
//! let db = Arc::new(Database::new());
//! db.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL)").unwrap();
//! db.execute("INSERT INTO e VALUES (1, 2), (2, 3)").unwrap();
//! let server = serve(db, ServerConfig::default()).unwrap();
//! let resp = client::post(
//!     server.addr(),
//!     "/query",
//!     r#"{"sql": "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
//!         "params": [1, 3]}"#,
//! )
//! .unwrap();
//! assert_eq!(resp.status, 200);
//! assert!(resp.body.contains("\"rows\":[[2]]"), "{}", resp.body);
//! let report = server.shutdown();
//! assert_eq!(report.dropped(), 0);
//! ```

pub mod client;
pub mod http;
pub mod json;
pub mod stats;

use gsql_core::{Database, Error, QueryResult, Session};
use gsql_storage::Value;
use json::Json;
use stats::{InFlight, ServerStats};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server is sized and bounded.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads — each owns one shared-cache session.
    pub workers: usize,
    /// Accepted connections waiting for a worker before new ones get 503.
    pub queue_depth: usize,
    /// Wall-clock cap applied to every `/query`; a request's own
    /// `timeout_ms` setting can only tighten it. `None` = no server cap.
    pub default_timeout_ms: Option<u64>,
    /// `SET name = value` pairs applied to every worker session at startup
    /// (e.g. `("threads", "4")`).
    pub settings: Vec<(String, String)>,
    /// Data directory for a durable serving tier. The server itself never
    /// reads this — it serves whatever [`Database`] it is handed — but the
    /// launcher (`gsql-shell --serve --data-dir <path>`) uses it to decide
    /// between `Database::open` and an in-memory `Database::new`.
    pub data_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            default_timeout_ms: None,
            settings: Vec::new(),
            data_dir: None,
        }
    }
}

/// What the drain at shutdown observed. `admitted == responded` is the
/// no-dropped-queries invariant; [`ShutdownReport::dropped`] is 0 iff it
/// held.
#[derive(Debug, Clone, Copy)]
pub struct ShutdownReport {
    /// Connections accepted and handed to the worker pool.
    pub admitted: u64,
    /// Connections a worker settled (response written, or the client had
    /// already gone away).
    pub responded: u64,
    /// Connections turned away with 503 (full queue) — never admitted, so
    /// never counted as dropped.
    pub refused: u64,
}

impl ShutdownReport {
    /// Admitted connections that never got a response. Graceful shutdown
    /// drains the queue, so this is 0 unless a worker thread died.
    pub fn dropped(&self) -> u64 {
        self.admitted.saturating_sub(self.responded)
    }
}

/// A running server; dropping it without calling
/// [`shutdown`](ServerHandle::shutdown) detaches the threads.
pub struct ServerHandle {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    shutting_down: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// Graceful shutdown: stop accepting, drain every admitted connection,
    /// join all threads, report what happened.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shutting_down.store(true, Ordering::SeqCst);
        // The acceptor is blocked in accept(); poke it awake. If the
        // connect fails the listener is already gone and join returns.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // No more pushes can happen; closing lets workers run the queue
        // dry and exit instead of blocking for more work.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Read responded before admitted: were anything still settling,
        // the invariant `responded <= admitted` could only be understated,
        // never violated.
        let responded = self.stats.responded.get();
        ShutdownReport {
            admitted: self.stats.admitted.get(),
            responded,
            refused: self.stats.refused.get(),
        }
    }
}

/// Start serving `db` on `config.addr`. Fails fast on a bad bind address
/// or invalid `config.settings` (they are dry-run against a throwaway
/// session before any thread spawns).
pub fn serve(db: Arc<Database>, config: ServerConfig) -> io::Result<ServerHandle> {
    if config.workers == 0 || config.queue_depth == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "workers and queue_depth must be at least 1",
        ));
    }
    {
        let probe = db.session();
        for (name, value) in &config.settings {
            probe.set(name, value).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidInput, format!("bad setting: {e}"))
            })?;
        }
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(ServerStats::new(db.metrics()));
    let shutting_down = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(ConnQueue::new(config.queue_depth));
    let config = Arc::new(config);

    let acceptor = {
        let (queue, stats, shutting_down) =
            (Arc::clone(&queue), Arc::clone(&stats), Arc::clone(&shutting_down));
        std::thread::Builder::new()
            .name("gsql-acceptor".into())
            .spawn(move || accept_loop(listener, &queue, &stats, &shutting_down))?
    };

    let mut workers = Vec::with_capacity(config.workers);
    for i in 0..config.workers {
        let (db, queue, stats, config) =
            (Arc::clone(&db), Arc::clone(&queue), Arc::clone(&stats), Arc::clone(&config));
        workers.push(
            std::thread::Builder::new()
                .name(format!("gsql-worker-{i}"))
                .spawn(move || worker_loop(&db, &queue, &stats, &config))?,
        );
    }

    Ok(ServerHandle { addr, stats, shutting_down, queue, acceptor: Some(acceptor), workers })
}

/// The bounded handoff between the acceptor and the workers.
struct ConnQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    /// Each admitted connection with its enqueue instant, so the worker
    /// that picks it up can observe the admission-queue wait.
    conns: VecDeque<(TcpStream, Instant)>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            capacity,
            state: Mutex::new(QueueState { conns: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    /// Non-blocking admit; hands the connection back when the queue is
    /// full (or closed) so the caller can refuse it.
    fn push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed || state.conns.len() >= self.capacity {
            return Err(conn);
        }
        state.conns.push_back((conn, Instant::now()));
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking take; `None` once the queue is closed *and* empty, so a
    /// close still drains everything already admitted. The second element
    /// is how long the connection waited for this worker.
    fn pop(&self) -> Option<(TcpStream, Duration)> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some((conn, enqueued)) = state.conns.pop_front() {
                return Some((conn, enqueued.elapsed()));
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

fn accept_loop(
    listener: TcpListener,
    queue: &ConnQueue,
    stats: &ServerStats,
    shutting_down: &AtomicBool,
) {
    loop {
        let Ok((conn, _)) = listener.accept() else { continue };
        if shutting_down.load(Ordering::SeqCst) {
            // The shutdown wake-up poke (or a client racing it); either
            // way no new work is admitted.
            break;
        }
        match queue.push(conn) {
            Ok(()) => {
                stats.admitted.inc();
                stats.queue_depth.add(1);
            }
            Err(mut conn) => {
                stats.refused.inc();
                let body = error_body("server saturated, retry shortly");
                let _ = http::write_response(&mut conn, 503, &body, &[("Retry-After", "1")]);
                // Lingering close: the client may still be writing its
                // request; closing with unread data in the buffer would
                // RST and can destroy the 503 before the client reads it.
                // Drain (briefly) until the client finishes, then close.
                let _ = conn.shutdown(std::net::Shutdown::Write);
                let _ = conn.set_read_timeout(Some(Duration::from_millis(250)));
                let mut sink = [0u8; 4096];
                while matches!(io::Read::read(&mut conn, &mut sink), Ok(n) if n > 0) {}
            }
        }
    }
}

fn worker_loop(db: &Arc<Database>, queue: &ConnQueue, stats: &ServerStats, config: &ServerConfig) {
    let session = db.shared_session();
    for (name, value) in &config.settings {
        // Validated in serve(); a failure here would mean the database
        // changed meaning under us, so just skip rather than die.
        let _ = session.set(name, value);
    }
    while let Some((conn, waited)) = queue.pop() {
        stats.queue_depth.sub(1);
        stats.queue_wait.observe(u64::try_from(waited.as_micros()).unwrap_or(u64::MAX));
        // handle_connection settles the connection — one `responded` tick
        // paired with one latency observation, on every path. That
        // balances `admitted`: the no-dropped-queries invariant at
        // shutdown.
        handle_connection(db, &session, conn, stats, config);
    }
}

/// Parse one request, route it, write the response, close.
///
/// Every path through here settles the connection **exactly once**: one
/// latency observation on an endpoint histogram paired with one
/// `responded` tick. Requests that never reach a real endpoint (vanished
/// clients, unparseable requests, unknown paths, wrong methods) settle on
/// the `other` histogram — so the request-duration histogram's total count
/// equals `responded` at every instant.
fn handle_connection(
    db: &Database,
    session: &Session<'_>,
    conn: TcpStream,
    stats: &ServerStats,
    config: &ServerConfig,
) {
    const JSON: &str = "application/json";
    const PROM: &str = "text/plain; version=0.0.4";
    let started = Instant::now();
    let settle = |endpoint: &stats::EndpointStats| {
        endpoint.record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        stats.responded.inc();
    };
    let Ok(read_half) = conn.try_clone() else {
        settle(&stats.other);
        return;
    };
    let mut conn = conn;
    let request = http::read_request(&mut BufReader::new(read_half));
    let (status, body, endpoint, content_type) = match request {
        Err(http::RequestError::Io(_)) => {
            // Client went away mid-request; nothing to write back.
            settle(&stats.other);
            return;
        }
        Err(http::RequestError::Malformed(msg)) => (400, error_body(&msg), &stats.other, JSON),
        Err(http::RequestError::TooLarge(msg)) => (413, error_body(&msg), &stats.other, JSON),
        Ok(req) => match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/query") => {
                let (status, body) = handle_query(session, &req.body, stats, config);
                (status, body, &stats.query, JSON)
            }
            ("GET", "/health") => (200, r#"{"status":"ok"}"#.to_string(), &stats.health, JSON),
            ("GET", "/stats") => (200, stats_body(db, session, stats), &stats.stats_endpoint, JSON),
            ("GET", "/metrics") => {
                (200, db.metrics().registry().render(), &stats.metrics_endpoint, PROM)
            }
            ("GET", "/slowlog") => {
                (200, db.slow_log().render_json(), &stats.slowlog_endpoint, JSON)
            }
            (_, "/query" | "/health" | "/stats" | "/metrics" | "/slowlog") => {
                (405, error_body("method not allowed on this endpoint"), &stats.other, JSON)
            }
            _ => (404, error_body("no such endpoint"), &stats.other, JSON),
        },
    };
    // Record before writing, so a client that saw the response (and may
    // immediately GET /stats or /metrics from another worker) finds it
    // counted.
    settle(endpoint);
    let _ = http::write_response_typed(&mut conn, status, &body, content_type, &[]);
}

/// Execute one `/query` request body against the worker's session.
fn handle_query(
    session: &Session<'_>,
    body: &[u8],
    stats: &ServerStats,
    config: &ServerConfig,
) -> (u16, String) {
    let Ok(text) = std::str::from_utf8(body) else {
        return (400, error_body("body is not UTF-8"));
    };
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    let Some(sql) = doc.get("sql").and_then(Json::as_str) else {
        return (400, error_body("missing string field 'sql'"));
    };
    let params = match doc.get("params") {
        None => Vec::new(),
        Some(p) => match convert_params(p) {
            Ok(params) => params,
            Err(msg) => return (400, error_body(&msg)),
        },
    };

    // Per-request setting overrides are applied to the worker session for
    // the duration of this statement and restored afterwards, success or
    // not — the next request must not inherit them.
    let mut saved: Vec<(String, String)> = Vec::new();
    if let Some(overrides) = doc.get("settings") {
        if let Err(msg) = apply_overrides(session, overrides, &mut saved) {
            restore_settings(session, &saved);
            return (400, error_body(&msg));
        }
    }
    // `"trace": true` turns span collection on for just this statement
    // (without downgrading an explicit `settings.trace = verbose`); the
    // collected tree rides back inline under `"trace"`.
    let want_trace = matches!(doc.get("trace"), Some(Json::Bool(true)));
    if want_trace {
        if let Ok(old) = session.setting("trace") {
            if old == "off" && session.set("trace", "on").is_ok() {
                saved.push(("trace".to_string(), old));
            }
        }
    }

    let in_flight = InFlight::enter(stats);
    let result = match config.default_timeout_ms {
        // execute_with_timeout takes the tighter of the server cap and the
        // session's (possibly request-overridden) timeout_ms setting.
        Some(cap) => session.execute_with_timeout(sql, &params, Duration::from_millis(cap)),
        None => session.execute_with_params(sql, &params),
    };
    drop(in_flight);
    restore_settings(session, &saved);

    match result {
        Ok(result) => {
            let mut members = result_members(&result);
            if want_trace {
                if let Some(spans) = session.last_trace_json().and_then(|t| json::parse(&t).ok()) {
                    members.push(("trace".to_string(), spans));
                }
            }
            (200, Json::Object(members).encode())
        }
        Err(e) => {
            stats.query_errors.inc();
            if matches!(e, Error::Timeout { .. }) {
                stats.query_timeouts.inc();
            }
            (error_status(&e), error_body(&e.to_string()))
        }
    }
}

/// Map engine errors onto HTTP statuses: the request was wrong (400), the
/// request ran too long (408), or the statement failed at runtime (422).
fn error_status(e: &Error) -> u16 {
    match e {
        Error::Parse(_) | Error::Bind(_) | Error::Unsupported(_) | Error::Storage(_) => 400,
        Error::Timeout { .. } => 408,
        Error::Exec(_) | Error::Graph(_) => 422,
    }
}

fn convert_params(params: &Json) -> Result<Vec<Value>, String> {
    let Some(items) = params.as_array() else {
        return Err("'params' must be an array".to_string());
    };
    items
        .iter()
        .map(|p| match p {
            Json::Null => Ok(Value::Null),
            Json::Bool(v) => Ok(Value::Bool(*v)),
            Json::Int(v) => Ok(Value::Int(*v)),
            Json::Float(v) => Ok(Value::Double(*v)),
            Json::Str(s) => Ok(Value::Str(s.clone())),
            Json::Array(_) | Json::Object(_) => {
                Err("parameters must be scalars (null/bool/number/string)".to_string())
            }
        })
        .collect()
}

fn apply_overrides(
    session: &Session<'_>,
    overrides: &Json,
    saved: &mut Vec<(String, String)>,
) -> Result<(), String> {
    let Json::Object(members) = overrides else {
        return Err("'settings' must be an object".to_string());
    };
    for (name, value) in members {
        let rendered = match value {
            Json::Str(s) => s.clone(),
            Json::Int(v) => v.to_string(),
            Json::Float(v) => v.to_string(),
            Json::Bool(v) => if *v { "on" } else { "off" }.to_string(),
            _ => return Err(format!("setting '{name}' must be a scalar")),
        };
        let old = session.setting(name).map_err(|e| e.to_string())?;
        session.set(name, &rendered).map_err(|e| e.to_string())?;
        saved.push((name.clone(), old));
    }
    Ok(())
}

fn restore_settings(session: &Session<'_>, saved: &[(String, String)]) {
    for (name, old) in saved {
        let _ = session.set(name, old);
    }
}

/// `{"error": "..."}`
fn error_body(message: &str) -> String {
    Json::Object(vec![("error".to_string(), Json::from(message))]).encode()
}

fn result_members(result: &QueryResult) -> Vec<(String, Json)> {
    match result {
        QueryResult::Table(t) => {
            let columns: Vec<Json> =
                t.schema().columns().iter().map(|c| Json::from(c.name.as_str())).collect();
            let rows: Vec<Json> = (0..t.row_count())
                .map(|i| Json::Array(t.row(i).iter().map(value_to_json).collect()))
                .collect();
            vec![
                ("columns".to_string(), Json::Array(columns)),
                ("rows".to_string(), Json::Array(rows)),
                ("row_count".to_string(), Json::from(t.row_count())),
            ]
        }
        QueryResult::Affected(n) => vec![("affected".to_string(), Json::from(*n))],
        QueryResult::Ok => vec![("ok".to_string(), Json::Bool(true))],
    }
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Int(v) => Json::Int(*v),
        Value::Double(v) => Json::Float(*v),
        Value::Str(s) => Json::from(s.as_str()),
        Value::Bool(v) => Json::Bool(*v),
        // Dates and nested-table paths serialize as their SQL text.
        other => Json::from(other.to_string()),
    }
}

/// The `/stats` JSON body — a thin view over the same registry
/// instruments `/metrics` renders, so the two surfaces can never drift
/// apart (the old implementation kept a second set of atomics here).
fn stats_body(db: &Database, session: &Session<'_>, stats: &ServerStats) -> String {
    let cache = db.shared_plan_cache().stats();
    let metrics = db.metrics();
    let endpoint = |e: &stats::EndpointStats| {
        let snap = e.snapshot();
        Json::Object(vec![
            ("requests".to_string(), Json::from(snap.count)),
            ("avg_micros".to_string(), Json::from(snap.sum.checked_div(snap.count).unwrap_or(0))),
            ("max_micros".to_string(), Json::from(snap.max)),
        ])
    };
    // Read responded before admitted so the pair can only understate
    // responded, never show responded > admitted.
    let responded = stats.responded.get();
    Json::Object(vec![
        (
            "plan_cache".to_string(),
            Json::Object(vec![
                ("hits".to_string(), Json::from(metrics.plan_cache_hits.get())),
                ("misses".to_string(), Json::from(metrics.plan_cache_misses.get())),
                ("invalidations".to_string(), Json::from(metrics.plan_cache_invalidations.get())),
                ("entries".to_string(), Json::from(cache.entries)),
            ]),
        ),
        ("admitted".to_string(), Json::from(stats.admitted.get())),
        ("responded".to_string(), Json::from(responded)),
        ("refused".to_string(), Json::from(stats.refused.get())),
        ("in_flight".to_string(), Json::from(stats.in_flight.get())),
        ("query_errors".to_string(), Json::from(stats.query_errors.get())),
        ("query_timeouts".to_string(), Json::from(stats.query_timeouts.get())),
        (
            "endpoints".to_string(),
            Json::Object(vec![
                ("query".to_string(), endpoint(&stats.query)),
                ("health".to_string(), endpoint(&stats.health)),
                ("stats".to_string(), endpoint(&stats.stats_endpoint)),
            ]),
        ),
        // How this worker's session executes queries: with the pipelined
        // executor, sessions interleave at morsel granularity rather than
        // whole-operator granularity, so these knobs bound how long one
        // query can hold the pool before another gets worker time.
        (
            "execution".to_string(),
            Json::Object(
                ["pipeline", "morsel_rows", "threads"]
                    .iter()
                    .map(|&name| {
                        let value = session.setting(name).unwrap_or_default();
                        (name.to_string(), Json::from(value.as_str()))
                    })
                    .collect(),
            ),
        ),
    ])
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_hands_back_when_full_and_drains_after_close() {
        let queue = ConnQueue::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let c1 = TcpStream::connect(addr).unwrap();
        let c2 = TcpStream::connect(addr).unwrap();
        assert!(queue.push(c1).is_ok());
        assert!(queue.push(c2).is_err(), "second push must bounce off capacity 1");
        queue.close();
        assert!(queue.pop().is_some(), "close still drains admitted connections");
        assert!(queue.pop().is_none());
        let c3 = TcpStream::connect(addr).unwrap();
        assert!(queue.push(c3).is_err(), "closed queue admits nothing");
    }

    #[test]
    fn config_validation_fails_fast() {
        let db = Arc::new(Database::new());
        let bad = ServerConfig { workers: 0, ..ServerConfig::default() };
        assert!(serve(Arc::clone(&db), bad).is_err());
        let bad = ServerConfig {
            settings: vec![("bogus".to_string(), "1".to_string())],
            ..ServerConfig::default()
        };
        assert!(serve(db, bad).is_err());
    }
}
