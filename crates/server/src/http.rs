//! A minimal HTTP/1.1 request parser and response writer over raw
//! `TcpStream`s.
//!
//! The offline build cannot use `hyper`; this implements exactly what the
//! serving tier needs: parse one request (request line + headers +
//! `Content-Length` body), write one response, close the connection.
//! Connections are not kept alive — keep-alive/pipelining is an explicit
//! roadmap follow-on.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on the request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path only (any `?query` suffix is split off and discarded).
    pub path: String,
    pub body: Vec<u8>,
}

/// Why a request could not be parsed; rendered as a 400 (or 413) response.
#[derive(Debug)]
pub enum RequestError {
    /// The socket failed or closed mid-request.
    Io(io::Error),
    /// The bytes were not valid HTTP.
    Malformed(String),
    /// The head or body exceeded its size limit.
    TooLarge(String),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> RequestError {
        RequestError::Io(e)
    }
}

/// Read and parse one request from `conn`.
pub fn read_request(conn: &mut BufReader<TcpStream>) -> Result<Request, RequestError> {
    let request_line = read_line(conn)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line missing target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!("unsupported version '{version}'")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: usize = 0;
    let mut head_bytes = request_line.len();
    loop {
        let line = read_line(conn)?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge("request head too large".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!("malformed header line '{line}'")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| RequestError::Malformed("bad Content-Length".into()))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    conn.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// Read one CRLF- (or LF-) terminated line, without the terminator.
fn read_line(conn: &mut BufReader<TcpStream>) -> Result<String, RequestError> {
    let mut line = Vec::new();
    let taken = conn
        .by_ref()
        .take(MAX_HEAD_BYTES as u64 + 1)
        .read_until(b'\n', &mut line)
        .map_err(RequestError::Io)?;
    if taken == 0 {
        return Err(RequestError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a full request",
        )));
    }
    if line.last() != Some(&b'\n') {
        return Err(RequestError::TooLarge("header line too long".into()));
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| RequestError::Malformed("non-UTF-8 header".into()))
}

/// Reason phrases for the statuses the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one complete response (and flush). `extra_headers` are appended
/// verbatim (e.g. `("Retry-After", "1")`).
pub fn write_response(
    conn: &mut TcpStream,
    status: u16,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    write_response_typed(conn, status, body, "application/json", extra_headers)
}

/// [`write_response`] with an explicit `Content-Type` (`/metrics` serves
/// the Prometheus text exposition format, not JSON).
pub fn write_response_typed(
    conn: &mut TcpStream,
    status: u16,
    body: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    conn.write_all(head.as_bytes())?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}
