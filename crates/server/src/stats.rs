//! Server-level counters, all lock-free atomics.
//!
//! Two of these counters carry the graceful-shutdown invariant: every
//! *admitted* connection (accepted and enqueued) must end up *responded*
//! (a response fully written, however the query went). Shutdown drains the
//! queue before workers exit, so `admitted == responded` afterwards —
//! [`crate::ServerHandle::shutdown`] asserts exactly that.

use std::sync::atomic::{AtomicU64, Ordering};

/// Latency/throughput counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointStats {
    /// Requests handled (response written).
    pub requests: AtomicU64,
    /// Total handling wall time, microseconds.
    pub total_micros: AtomicU64,
    /// Slowest single request, microseconds.
    pub max_micros: AtomicU64,
}

impl EndpointStats {
    pub fn record(&self, micros: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }
}

/// Counters shared by the acceptor and every worker.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted and enqueued for a worker.
    pub admitted: AtomicU64,
    /// Connections for which a worker finished writing a response.
    pub responded: AtomicU64,
    /// Connections turned away with 503 (queue full) or during shutdown.
    pub refused: AtomicU64,
    /// Requests a worker is executing right now.
    pub in_flight: AtomicU64,
    /// Query statements that failed (any error class).
    pub query_errors: AtomicU64,
    /// Query statements aborted by their deadline (subset of errors).
    pub query_timeouts: AtomicU64,
    pub query: EndpointStats,
    pub health: EndpointStats,
    pub stats_endpoint: EndpointStats,
}

impl ServerStats {
    pub fn load(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// RAII in-flight marker: increments on creation, decrements on drop (so
/// panics and early returns cannot leak the gauge).
pub struct InFlight<'a>(&'a ServerStats);

impl<'a> InFlight<'a> {
    pub fn enter(stats: &'a ServerStats) -> InFlight<'a> {
        stats.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlight(stats)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}
