//! Server-level counters — thin handles into the engine-wide
//! [`gsql_obs::Registry`], so `/stats` and `/metrics` read the **same**
//! instruments and nothing is double-booked.
//!
//! Two of these counters carry the graceful-shutdown invariant: every
//! *admitted* connection (accepted and enqueued) must end up *responded*
//! (a response fully written, however the query went). Shutdown drains the
//! queue before workers exit, so `admitted == responded` afterwards —
//! [`crate::ServerHandle::shutdown`] asserts exactly that. `responded` is
//! bumped at the same point the endpoint latency histogram records, so the
//! request-duration histogram's total count equals `responded` at every
//! instant, not just at shutdown.

use gsql_obs::{latency_buckets_us, Counter, EngineMetrics, Gauge, Histogram, HistogramSnapshot};
use std::sync::Arc;

/// Latency/throughput view over one endpoint's request-duration histogram
/// (`gsql_http_request_duration_microseconds{endpoint=…}`). Request count,
/// total and max all live inside the histogram — one observation per
/// settled request.
#[derive(Debug)]
pub struct EndpointStats {
    latency: Arc<Histogram>,
}

impl EndpointStats {
    fn new(metrics: &EngineMetrics, endpoint: &str) -> EndpointStats {
        EndpointStats {
            latency: metrics.registry().histogram_with(
                "gsql_http_request_duration_microseconds",
                "End-to-end request handling latency by endpoint.",
                &[("endpoint", endpoint)],
                &latency_buckets_us(),
            ),
        }
    }

    /// Record one settled request.
    pub fn record(&self, micros: u64) {
        self.latency.observe(micros);
    }

    /// Point-in-time latency distribution (count / sum / max).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }
}

/// Counters shared by the acceptor and every worker, registered in the
/// database's metrics registry at server startup.
#[derive(Debug)]
pub struct ServerStats {
    /// Connections accepted and enqueued for a worker.
    pub admitted: Arc<Counter>,
    /// Connections a worker settled (response written, or the client had
    /// already gone away).
    pub responded: Arc<Counter>,
    /// Connections turned away with 503 (queue full) or during shutdown.
    pub refused: Arc<Counter>,
    /// Requests a worker is executing right now.
    pub in_flight: Arc<Gauge>,
    /// Query statements that failed (any error class).
    pub query_errors: Arc<Counter>,
    /// Query statements aborted by their deadline (subset of errors).
    pub query_timeouts: Arc<Counter>,
    /// Admitted connections currently waiting for a worker.
    pub queue_depth: Arc<Gauge>,
    /// Time admitted connections spent queued before a worker picked them
    /// up, microseconds.
    pub queue_wait: Arc<Histogram>,
    pub query: EndpointStats,
    pub health: EndpointStats,
    pub stats_endpoint: EndpointStats,
    pub metrics_endpoint: EndpointStats,
    pub slowlog_endpoint: EndpointStats,
    /// Everything that never reached a real endpoint: unparseable or
    /// oversized requests, unknown paths, wrong methods, vanished clients.
    pub other: EndpointStats,
}

impl ServerStats {
    /// Register every server instrument in `metrics`' registry.
    pub fn new(metrics: &EngineMetrics) -> ServerStats {
        let r = metrics.registry();
        ServerStats {
            admitted: r.counter(
                "gsql_http_admitted_total",
                "Connections accepted and enqueued for a worker.",
            ),
            responded: r.counter(
                "gsql_http_responded_total",
                "Connections settled by a worker (response written or client gone).",
            ),
            refused: r.counter(
                "gsql_http_refused_total",
                "Connections turned away with 503 (admission queue full).",
            ),
            in_flight: r.gauge("gsql_http_in_flight", "Query statements executing right now."),
            query_errors: r.counter(
                "gsql_http_query_errors_total",
                "Query requests that failed with any error class.",
            ),
            query_timeouts: r.counter(
                "gsql_http_query_timeouts_total",
                "Query requests aborted by their deadline (subset of errors).",
            ),
            queue_depth: r.gauge(
                "gsql_http_queue_depth",
                "Admitted connections currently waiting for a worker.",
            ),
            queue_wait: r.histogram(
                "gsql_http_queue_wait_microseconds",
                "Time admitted connections waited for a worker.",
                &latency_buckets_us(),
            ),
            query: EndpointStats::new(metrics, "query"),
            health: EndpointStats::new(metrics, "health"),
            stats_endpoint: EndpointStats::new(metrics, "stats"),
            metrics_endpoint: EndpointStats::new(metrics, "metrics"),
            slowlog_endpoint: EndpointStats::new(metrics, "slowlog"),
            other: EndpointStats::new(metrics, "other"),
        }
    }
}

/// RAII in-flight marker: increments on creation, decrements on drop (so
/// panics and early returns cannot leak the gauge).
pub struct InFlight<'a>(&'a ServerStats);

impl<'a> InFlight<'a> {
    pub fn enter(stats: &'a ServerStats) -> InFlight<'a> {
        stats.in_flight.add(1);
        InFlight(stats)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.in_flight.sub(1);
    }
}
