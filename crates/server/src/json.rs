//! A minimal JSON model, parser and encoder.
//!
//! The build environment is offline, so the server cannot depend on
//! `serde`; this module implements the small subset the HTTP API needs:
//! the full JSON value model, a recursive-descent parser with depth and
//! size limits, and an encoder with correct string escaping. Numbers are
//! kept as `i64` when the text is integral (query parameters are almost
//! always vertex ids) and `f64` otherwise.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number written without a fraction or exponent, within `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Members in document order (duplicate keys keep the last).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        i64::try_from(v).map(Json::Int).unwrap_or(Json::Float(v as f64))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a document failed to parse; rendered into 400 responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description including the byte offset.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting deeper than this is rejected (stack-overflow guard).
const MAX_DEPTH: usize = 64;

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: format!("{message} at byte {}", self.pos) }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            // Surrogate pairs encode astral-plane chars;
                            // hex4 leaves pos on the last digit and the
                            // shared advance below moves past it.
                            let c = if (0xD800..0xDC00).contains(&first)
                                && self.bytes[self.pos + 1..].starts_with(b"\\u")
                            {
                                self.pos += 3; // past `\u` to the first digit
                                let second = self.hex4()?;
                                if (0xDC00..0xE000).contains(&second) {
                                    let high = (first - 0xD800) as u32;
                                    let low = (second - 0xDC00) as u32;
                                    char::from_u32(0x10000 + (high << 10) + low)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first as u32)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing on
                    // char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = text.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read 4 hex digits starting at `pos`, leaving `pos` on the last one.
    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for i in 0..4 {
            let d = self
                .bytes
                .get(self.pos + i)
                .and_then(|b| (*b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            v = (v << 4) | d as u16;
        }
        self.pos += 3;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shapes() {
        let v = parse(r#"{"sql": "SELECT 1", "params": [1, -2, "x", true, null, 1.5]}"#).unwrap();
        assert_eq!(v.get("sql").and_then(Json::as_str), Some("SELECT 1"));
        let params = v.get("params").and_then(Json::as_array).unwrap();
        assert_eq!(params[0], Json::Int(1));
        assert_eq!(params[1], Json::Int(-2));
        assert_eq!(params[2], Json::Str("x".into()));
        assert_eq!(params[3], Json::Bool(true));
        assert_eq!(params[4], Json::Null);
        assert_eq!(params[5], Json::Float(1.5));
    }

    #[test]
    fn roundtrips_escapes() {
        let v = parse(r#""a\"b\\c\ndéA""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\ndéA".into()));
        let encoded = Json::Str("a\"b\\c\ndé".into()).encode();
        assert_eq!(parse(&encoded).unwrap(), Json::Str("a\"b\\c\ndé".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", r#"{"a":}"#, "[1,]", "tru", "1 2", "\"\u{1}\"", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn encodes_objects_compactly() {
        let v = Json::Object(vec![
            ("ok".into(), Json::Bool(true)),
            ("n".into(), Json::Int(3)),
            ("items".into(), Json::Array(vec![Json::Null, Json::from("s")])),
        ]);
        assert_eq!(v.encode(), r#"{"ok":true,"n":3,"items":[null,"s"]}"#);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }
}
