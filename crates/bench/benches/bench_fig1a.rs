//! Criterion version of Figure 1a: Q13 vs the weighted Q14 variant.
//!
//! Uses a small scale factor so the statistical run stays fast; the paper's
//! full sweep is produced by the `fig1a` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsql_bench::{load_dataset, sample_pairs};
use gsql_bench::queries::{Q13, Q14_VARIANT};
use gsql_storage::Value;

fn fig1a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1a");
    group.sample_size(10);
    for sf in [0.02, 0.1] {
        let d = load_dataset(sf, 2017);
        let pairs = sample_pairs(64, d.num_persons, 7);
        let q13 = d.db.prepare(Q13).unwrap();
        let q14 = d.db.prepare(Q14_VARIANT).unwrap();
        let mut cursor = 0usize;
        group.bench_function(BenchmarkId::new("q13_unweighted", sf), |b| {
            b.iter(|| {
                let (s, t) = pairs[cursor % pairs.len()];
                cursor += 1;
                q13.execute(&d.db, &[Value::Int(s), Value::Int(t)]).unwrap()
            })
        });
        let mut cursor = 0usize;
        group.bench_function(BenchmarkId::new("q14_weighted", sf), |b| {
            b.iter(|| {
                let (s, t) = pairs[cursor % pairs.len()];
                cursor += 1;
                q14.execute(&d.db, &[Value::Int(s), Value::Int(t)]).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig1a);
criterion_main!(benches);
