//! Criterion benchmark for Table 1 dataset generation (the LDBC DATAGEN
//! substitute): persons + friendship edges at small scale factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsql_datagen::{SnbDataset, SnbParams};

fn table1_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_datagen");
    group.sample_size(10);
    for sf in [0.01, 0.05, 0.2] {
        let params = SnbParams { scale_factor: sf, seed: 42 };
        group.throughput(Throughput::Elements(params.edge_count()));
        group.bench_function(BenchmarkId::new("generate", sf), |b| {
            b.iter(|| SnbDataset::generate(params))
        });
    }
    group.finish();
}

criterion_group!(benches, table1_datagen);
criterion_main!(benches);
