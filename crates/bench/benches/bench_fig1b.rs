//! Criterion version of Figure 1b: batched Q13, reported per statement at
//! each batch size (divide by the batch size for the paper's per-pair
//! metric; the `fig1b` binary prints it that way).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsql_bench::queries::batched_q13;
use gsql_bench::{load_dataset, sample_pairs};

fn fig1b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1b");
    group.sample_size(10);
    let d = load_dataset(0.1, 2017);
    for batch in [1usize, 4, 16, 64] {
        let pairs = sample_pairs(batch, d.num_persons, batch as u64);
        let sql = batched_q13(&pairs);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_function(BenchmarkId::new("q13_batched", batch), |b| {
            b.iter(|| d.db.query(&sql).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, fig1b);
criterion_main!(benches);
