//! Ablation 3: the graph-runtime algorithm choices on the SNB-like graph —
//! CSR construction cost (the paper's dominant cost), BFS vs radix-queue
//! Dijkstra vs binary-heap Dijkstra, and the batch driver.

use criterion::{criterion_group, criterion_main, Criterion};
use gsql_bench::load_dataset;
use gsql_core::build_graph;
use gsql_graph::{bfs, dijkstra_float, dijkstra_int, BatchComputer, WeightSpec};
use std::sync::Arc;

fn algorithms(c: &mut Criterion) {
    let d = load_dataset(0.1, 2017);
    let edges = d.db.catalog().get("friends").unwrap();
    let graph = Arc::new(build_graph(Arc::clone(&edges), 0, 1).unwrap());
    let n_edges = graph.num_edges();

    // Integer weights (Q14-variant shape) and float weights, in CSR order.
    let raw_int: Vec<i64> = (0..n_edges).map(|i| 1 + (i as i64 % 7)).collect();
    let raw_float: Vec<f64> = raw_int.iter().map(|&w| w as f64 / 2.0).collect();
    let w_int = graph.csr.permute_weights_int(&raw_int).unwrap();
    let w_float = graph.csr.permute_weights_float(&raw_float).unwrap();

    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);

    group.bench_function("csr_construction", |b| {
        b.iter(|| build_graph(Arc::clone(&edges), 0, 1).unwrap())
    });
    group.bench_function("bfs_full", |b| b.iter(|| bfs(&graph.csr, 0, &[])));
    group.bench_function("dijkstra_radix_int_full", |b| {
        b.iter(|| dijkstra_int(&graph.csr, 0, &[], &w_int))
    });
    group.bench_function("dijkstra_binary_float_full", |b| {
        b.iter(|| dijkstra_float(&graph.csr, 0, &[], &w_float))
    });

    // Early-exit single-pair runs (what Q13 actually executes).
    let target = graph.num_vertices() / 2;
    group.bench_function("bfs_single_target", |b| b.iter(|| bfs(&graph.csr, 0, &[target])));
    group.bench_function("dijkstra_radix_single_target", |b| {
        b.iter(|| dijkstra_int(&graph.csr, 0, &[target], &w_int))
    });

    // Bidirectional BFS (our §4 "improve the BFS" extension): needs the
    // reverse CSR, which a graph index would cache.
    let rev = gsql_graph::reverse_csr(&graph.csr);
    group.bench_function("bidirectional_bfs_single_target", |b| {
        b.iter(|| gsql_graph::bidirectional_bfs(&graph.csr, &rev, 0, target))
    });
    group.bench_function("reverse_csr_construction", |b| {
        b.iter(|| gsql_graph::reverse_csr(&graph.csr))
    });

    // The batch driver: 64 pairs sharing 8 sources -> 8 traversals.
    let pairs: Vec<(u32, u32)> = (0..64u32)
        .map(|i| (i % 8, (i * 37) % graph.num_vertices()))
        .collect();
    group.bench_function("batch_64pairs_8sources", |b| {
        let computer = BatchComputer::new(&graph.csr);
        b.iter(|| computer.compute(&pairs, &WeightSpec::Unweighted, true).unwrap())
    });
    group.finish();
}

criterion_group!(benches, algorithms);
criterion_main!(benches);
