//! Engine micro-benchmarks: parsing, binding+planning, filters, hash join,
//! aggregation, sorting — the relational substrate around the graph
//! operator.

use criterion::{criterion_group, criterion_main, Criterion};
use gsql_core::Database;
use gsql_parser::parse_statement;

fn setup_db(rows: usize) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER NOT NULL, grp INTEGER NOT NULL, v DOUBLE NOT NULL)")
        .unwrap();
    let mut sql = String::from("INSERT INTO t VALUES ");
    for i in 0..rows {
        if i > 0 {
            sql.push_str(", ");
        }
        sql.push_str(&format!("({i}, {}, {}.5)", i % 100, i % 1000));
    }
    db.execute(&sql).unwrap();
    db
}

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");
    group.sample_size(20);

    let paper_query = "WITH friends1 AS (SELECT * FROM friends WHERE creationDate < '2011-01-01') \
         SELECT firstName || ' ' || lastName AS person, \
                CHEAPEST SUM(f: CAST(weight * 2 AS INTEGER)) AS (cost, path) \
         FROM persons \
         WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)";
    group.bench_function("parse_paper_query", |b| {
        b.iter(|| parse_statement(paper_query).unwrap())
    });

    let db = setup_db(20_000);
    group.bench_function("plan_filter_query", |b| {
        b.iter(|| db.plan("SELECT id FROM t WHERE grp = 5 AND v > 100.0").unwrap())
    });
    group.bench_function("filter_scan_20k", |b| {
        b.iter(|| db.query("SELECT id FROM t WHERE grp = 5").unwrap())
    });
    group.bench_function("aggregate_20k_100groups", |b| {
        b.iter(|| {
            db.query("SELECT grp, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY grp").unwrap()
        })
    });
    group.bench_function("sort_20k", |b| {
        b.iter(|| db.query("SELECT id FROM t ORDER BY v DESC, id LIMIT 100").unwrap())
    });

    let small = setup_db(2_000);
    group.bench_function("hash_join_2k_x_2k", |b| {
        b.iter(|| {
            small
                .query("SELECT a.id FROM t a JOIN t b ON a.id = b.id WHERE b.grp < 50")
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
