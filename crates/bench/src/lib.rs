//! # gsql-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§4), plus the ablations listed in DESIGN.md.
//!
//! Binaries (all support `--sf a,b,c` and `--reps n`; defaults are sized
//! for a small machine — pass the paper's scale factors explicitly to run
//! the full sweep):
//!
//! * `table1` — graph sizes per scale factor (paper Table 1);
//! * `fig1a` — average latency per query, Q13 vs the weighted Q14 variant
//!   (paper Figure 1a);
//! * `fig1b` — latency per pair at batch sizes 1…128 (paper Figure 1b);
//! * `ablation_baselines` — native operator vs the §1 "customary" SQL
//!   strategies;
//! * `ablation_graph_index` — per-query graph construction vs the §6
//!   graph index;
//! * `parallel_scaling` — many-source batched Q13 with `SET threads = 1`
//!   vs `SET threads = N` (also takes `--batch` and `--threads`); with
//!   `--pipeline`, the morsel-driven scenario instead: barrier vs
//!   pipelined executor on a fused scan→filter→hash-join→aggregate road
//!   workload (`--width`/`--height`/`--morsel-rows`/`--smoke`/`--json`).
//!
//! Criterion micro-benchmarks live under `benches/`.

pub mod harness;
pub mod queries;
pub mod report;

pub use harness::*;
