//! Ablation 2: per-query graph construction vs the paper-§6 graph index.
//!
//! `cargo run -p gsql-bench --release --bin ablation_graph_index -- --sf 0.1,1`

use gsql_bench::{print_ablation_graph_index, run_ablation_graph_index, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("(scale factors: {:?}, {} reps, seed {})\n", cfg.sfs, cfg.reps, cfg.seed);
    let rows = run_ablation_graph_index(&cfg);
    print_ablation_graph_index(&rows);
    println!("\nExpectation: the index removes the dominant construction cost, confirming");
    println!("the paper's §4 observation and motivating its §6 future work.");
}
