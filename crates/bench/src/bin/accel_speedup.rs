//! The three-way point-to-point benchmark: plain Dijkstra versus the two
//! acceleration tiers — ALT (goal-directed bidirectional A\* over a
//! landmark index) and CH (bidirectional upward Dijkstra over a
//! contraction hierarchy) — reported as **settled vertices** (the work the
//! preprocessing prunes), preprocessing cost (build time, index size,
//! shortcut count) and query wall time. First at the graph-runtime layer,
//! then end-to-end through SQL sessions (`path_index = off`, a
//! `USING LANDMARKS(k)` index, a `USING CONTRACTION` index), asserting
//! identical results on the way.
//!
//! A third scenario benchmarks the batched many-to-many tier: an `S × T`
//! distance matrix computed by plain per-source Dijkstra, by multi-target
//! ALT (one goal-directed search per source) and by bucket-based CH
//! (`S + T` upward searches), asserting all three matrices are identical.
//!
//! The benchmark graph is road-like — a `side × side` bidirectional grid
//! with random integer weights — because that is the workload contraction
//! hierarchies are built for; `--vertices` is rounded down to a square.
//!
//! `cargo run -p gsql-bench --release --bin accel_speedup -- \
//!      --vertices 20000 --pairs 100 --landmarks 16`
//!
//! `--smoke` shrinks every knob for CI; `--json` appends one line of
//! machine-readable results after the tables.

use gsql_bench::report::{arg_value, fmt_duration, render_table};
use gsql_core::Database;
use gsql_server::json::Json;
use gsql_storage::Value;
use rand::prelude::*;
use std::time::{Duration, Instant};

struct Config {
    side: u32,
    pairs: usize,
    landmarks: u32,
    seed: u64,
    threads: usize,
    mat_sources: usize,
    mat_targets: usize,
    json: bool,
}

impl Config {
    fn from_args() -> Config {
        let args: Vec<String> = std::env::args().collect();
        let smoke = args.iter().any(|a| a == "--smoke");
        let get = |flag: &str, default: u64| {
            arg_value(&args, flag).and_then(|s| s.parse().ok()).unwrap_or(default)
        };
        let vertices = get("--vertices", if smoke { 2_500 } else { 20_000 });
        Config {
            side: (vertices as f64).sqrt() as u32,
            pairs: get("--pairs", if smoke { 20 } else { 100 }) as usize,
            landmarks: get("--landmarks", if smoke { 8 } else { 16 }) as u32,
            seed: get("--seed", 42),
            threads: get("--threads", 4) as usize,
            mat_sources: get("--matrix-sources", if smoke { 12 } else { 40 }) as usize,
            mat_targets: get("--matrix-targets", if smoke { 12 } else { 40 }) as usize,
            json: args.iter().any(|a| a == "--json"),
        }
    }

    fn vertices(&self) -> u32 {
        self.side * self.side
    }
}

/// A `side × side` grid, each lattice edge present in both directions with
/// independent strictly positive integer weights.
fn generate(cfg: &Config) -> (Vec<u32>, Vec<u32>, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let side = cfg.side;
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut w = Vec::new();
    let mut edge = |s: u32, d: u32, rng: &mut StdRng| {
        src.push(s);
        dst.push(d);
        w.push(rng.gen_range(1..10));
    };
    for r in 0..side {
        for c in 0..side {
            let v = r * side + c;
            if c + 1 < side {
                edge(v, v + 1, &mut rng);
                edge(v + 1, v, &mut rng);
            }
            if r + 1 < side {
                edge(v, v + side, &mut rng);
                edge(v + side, v, &mut rng);
            }
        }
    }
    (src, dst, w)
}

fn main() {
    let cfg = Config::from_args();
    println!(
        "accel speedup: {}x{} grid (|V| = {}), {} point-to-point pairs, {} landmarks, seed {}\n",
        cfg.side,
        cfg.side,
        cfg.vertices(),
        cfg.pairs,
        cfg.landmarks,
        cfg.seed
    );
    let (src, dst, weights) = generate(&cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xa17);
    let pairs: Vec<(u32, u32)> = (0..cfg.pairs)
        .map(|_| (rng.gen_range(0..cfg.vertices()), rng.gen_range(0..cfg.vertices())))
        .collect();

    // ---------------------------------------------- graph-runtime layer
    let t = cfg.threads;
    let graph = gsql_graph::Csr::from_edges_with_threads(cfg.vertices(), &src, &dst, t).unwrap();
    let reverse = gsql_graph::reverse_csr_with_threads(&graph, t);
    let wf = graph.permute_weights_int_with_threads(&weights, t).unwrap();
    let wb = reverse.permute_weights_int_with_threads(&weights, t).unwrap();

    let t0 = Instant::now();
    let lm =
        gsql_accel::Landmarks::build(&graph, &reverse, Some((&wf, &wb)), cfg.landmarks as usize, t);
    let alt_build = t0.elapsed();
    let t0 = Instant::now();
    let ch = gsql_accel::ContractionHierarchy::build(&graph, Some(&wf), t);
    let ch_build = t0.elapsed();
    let mib = |bytes: usize| format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0));
    let build_rows = vec![
        vec![
            format!("ALT ({} landmarks)", lm.len()),
            fmt_duration(alt_build),
            mib(lm.memory_bytes()),
            "-".to_string(),
        ],
        vec![
            "CH".to_string(),
            fmt_duration(ch_build),
            mib(ch.memory_bytes()),
            ch.shortcuts().to_string(),
        ],
    ];
    println!("{}", render_table(&["index", "build", "size", "shortcuts"], &build_rows));

    let mut scratch = gsql_graph::DijkstraIntScratch::new();
    let mut plain_settled = 0usize;
    let t_plain = Instant::now();
    let mut plain_dists = Vec::with_capacity(pairs.len());
    for &(s, d) in &pairs {
        gsql_graph::dijkstra_int_into(&graph, s, &[d], &wf, &mut scratch);
        plain_settled += scratch.settled_count();
        let dist = scratch.dist[d as usize];
        plain_dists.push(if dist == u64::MAX { None } else { Some(dist) });
    }
    let plain_time = t_plain.elapsed();

    let mut alt_settled = 0usize;
    let t_alt = Instant::now();
    for (i, &(s, d)) in pairs.iter().enumerate() {
        let r = gsql_accel::alt_bidirectional(&graph, &reverse, Some((&wf, &wb)), &lm, s, d);
        alt_settled += r.settled;
        assert_eq!(r.dist, plain_dists[i], "ALT diverged from Dijkstra on pair {i}");
    }
    let alt_time = t_alt.elapsed();

    let mut ch_settled = 0usize;
    let t_ch = Instant::now();
    for (i, &(s, d)) in pairs.iter().enumerate() {
        let r = gsql_accel::ch_query(&ch, s, d);
        ch_settled += r.settled;
        assert_eq!(r.dist, plain_dists[i], "CH diverged from Dijkstra on pair {i}");
    }
    let ch_time = t_ch.elapsed();

    let per_query = |settled: usize| format!("{:.0}", settled as f64 / pairs.len() as f64);
    let rows = vec![
        vec![
            "plain Dijkstra".to_string(),
            plain_settled.to_string(),
            per_query(plain_settled),
            fmt_duration(plain_time),
        ],
        vec![
            "ALT bidirectional A*".to_string(),
            alt_settled.to_string(),
            per_query(alt_settled),
            fmt_duration(alt_time),
        ],
        vec![
            "CH upward Dijkstra".to_string(),
            ch_settled.to_string(),
            per_query(ch_settled),
            fmt_duration(ch_time),
        ],
    ];
    println!("{}", render_table(&["search", "settled (total)", "settled/query", "wall"], &rows));
    println!(
        "pruning vs plain: ALT {:.1}x, CH {:.1}x fewer settled vertices; CH settles {:.1}x \
         fewer than ALT\nwall vs plain: ALT {:.1}x, CH {:.1}x (runtime layer)\n",
        plain_settled as f64 / alt_settled.max(1) as f64,
        plain_settled as f64 / ch_settled.max(1) as f64,
        alt_settled as f64 / ch_settled.max(1) as f64,
        plain_time.as_secs_f64() / alt_time.as_secs_f64().max(1e-9),
        plain_time.as_secs_f64() / ch_time.as_secs_f64().max(1e-9),
    );

    // ------------------------------------------ many-to-many matrix layer
    // Distinct random sides: the plain baseline runs one full Dijkstra per
    // source (exactly what the batched runtime did before the m2m tier).
    let mut m_sources: Vec<u32> =
        (0..cfg.mat_sources).map(|_| rng.gen_range(0..cfg.vertices())).collect();
    m_sources.sort_unstable();
    m_sources.dedup();
    let mut m_targets: Vec<u32> =
        (0..cfg.mat_targets).map(|_| rng.gen_range(0..cfg.vertices())).collect();
    m_targets.sort_unstable();
    m_targets.dedup();
    println!(
        "many-to-many matrix: {} sources x {} targets = {} pairs",
        m_sources.len(),
        m_targets.len(),
        m_sources.len() * m_targets.len()
    );

    let mut plain_m_settled = 0usize;
    let t0 = Instant::now();
    let mut truth = Vec::with_capacity(m_sources.len() * m_targets.len());
    for &s in &m_sources {
        gsql_graph::dijkstra_int_into(&graph, s, &[], &wf, &mut scratch);
        plain_m_settled += scratch.settled_count();
        truth.extend(m_targets.iter().map(|&t| scratch.dist[t as usize]));
    }
    let plain_m_time = t0.elapsed();

    let t0 = Instant::now();
    let am = gsql_accel::alt_many_to_many(&graph, Some(&wf), &lm, &m_sources, &m_targets, t, None)
        .unwrap();
    let alt_m_time = t0.elapsed();
    assert_eq!(am.dist, truth, "ALT-multi matrix diverged from per-source Dijkstra");

    let t0 = Instant::now();
    let cm = gsql_accel::ch_many_to_many(&ch, &m_sources, &m_targets, t, None).unwrap();
    let ch_m_time = t0.elapsed();
    assert_eq!(cm.dist, truth, "CH-m2m matrix diverged from per-source Dijkstra");

    let per_source = |settled: usize| format!("{:.0}", settled as f64 / m_sources.len() as f64);
    let m_rows = vec![
        vec![
            "plain per-source Dijkstra".to_string(),
            plain_m_settled.to_string(),
            per_source(plain_m_settled),
            "-".to_string(),
            fmt_duration(plain_m_time),
        ],
        vec![
            "ALT multi-target".to_string(),
            am.settled.to_string(),
            per_source(am.settled),
            "-".to_string(),
            fmt_duration(alt_m_time),
        ],
        vec![
            "CH buckets (m2m)".to_string(),
            cm.settled.to_string(),
            per_source(cm.settled),
            cm.bucket_entries.to_string(),
            fmt_duration(ch_m_time),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["matrix", "settled (total)", "settled/source", "bucket entries", "wall"],
            &m_rows
        )
    );
    let alt_m_factor = plain_m_settled as f64 / am.settled.max(1) as f64;
    let ch_m_factor = plain_m_settled as f64 / cm.settled.max(1) as f64;
    println!(
        "matrix pruning vs plain: ALT-multi {alt_m_factor:.1}x, CH-m2m {ch_m_factor:.1}x fewer \
         settled vertices\nmatrix wall vs plain: ALT-multi {:.1}x, CH-m2m {:.1}x (runtime layer)\n",
        plain_m_time.as_secs_f64() / alt_m_time.as_secs_f64().max(1e-9),
        plain_m_time.as_secs_f64() / ch_m_time.as_secs_f64().max(1e-9),
    );
    // The m2m tier only earns its keep if it prunes hard; a regression
    // below 3x on the road-like grid should fail loudly, including in the
    // CI smoke run.
    assert!(
        ch_m_factor >= 3.0,
        "CH-m2m settled only {ch_m_factor:.1}x fewer vertices than plain (expected >= 3x)"
    );

    // --------------------------------------------------- end-to-end SQL
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL, w INTEGER NOT NULL)")
        .unwrap();
    let mut stmt_rows = String::new();
    for i in 0..src.len() {
        if !stmt_rows.is_empty() {
            stmt_rows.push_str(", ");
        }
        stmt_rows.push_str(&format!("({}, {}, {})", src[i], dst[i], weights[i]));
        if stmt_rows.len() > 200_000 {
            db.execute(&format!("INSERT INTO e VALUES {stmt_rows}")).unwrap();
            stmt_rows.clear();
        }
    }
    if !stmt_rows.is_empty() {
        db.execute(&format!("INSERT INTO e VALUES {stmt_rows}")).unwrap();
    }
    db.execute("CREATE GRAPH INDEX ge ON e EDGE (s, d)").unwrap();

    // Three configurations: no path index, a landmark index, a contraction
    // index. Indexes are created between runs; the optimizer prefers CH
    // over ALT once both exist, so each run exercises the intended tier.
    let sql = "SELECT CHEAPEST SUM(f: f.w) AS cost WHERE ? REACHES ? OVER e f EDGE (s, d)";
    let mut sql_rows = Vec::new();
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for (label, setting, ddl) in [
        ("path_index = off", "off", None),
        (
            "ALT index",
            "on",
            Some(format!(
                "CREATE PATH INDEX pa ON e EDGE (s, d) WEIGHT w USING LANDMARKS({})",
                cfg.landmarks
            )),
        ),
        (
            "CH index",
            "on",
            Some("CREATE PATH INDEX pc ON e EDGE (s, d) WEIGHT w USING CONTRACTION".to_string()),
        ),
    ] {
        if let Some(ddl) = ddl {
            db.execute(&ddl).unwrap();
        }
        let session = db.session();
        session.set("path_index", setting).unwrap();
        let stmt = session.prepare(sql).unwrap();
        let t0 = Instant::now();
        let mut results = Vec::with_capacity(pairs.len());
        for &(s, d) in &pairs {
            let t = stmt.query(&session, &[Value::Int(s as i64), Value::Int(d as i64)]).unwrap();
            results.push((0..t.row_count()).map(|r| t.row(r)).next().unwrap_or_default());
        }
        let elapsed = t0.elapsed();
        match &reference {
            None => reference = Some(results),
            Some(expected) => {
                assert_eq!(expected, &results, "{label} must return byte-identical results")
            }
        }
        sql_rows.push(vec![
            label.to_string(),
            fmt_duration(elapsed),
            format!("{:.1} µs", elapsed.as_secs_f64() * 1e6 / pairs.len() as f64),
        ]);
    }
    println!("{}", render_table(&["SQL session", "wall", "per query"], &sql_rows));
    println!("results are byte-identical in all three configurations.");

    // ------------------------------------------- warm restart (durability)
    // The same CH-indexed workload through a durable database: checkpoint,
    // reopen, and answer from the persisted index — zero rebuild work. The
    // `settled=` plan details must be byte-identical across the restart.
    let dir = std::env::temp_dir().join(format!("gsql-accel-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let restart_pairs = &pairs[..pairs.len().min(10)];
    let settled_details = |db: &Database, pairs: &[(u32, u32)]| -> Vec<String> {
        let session = db.session();
        let stmt = session.prepare(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        pairs
            .iter()
            .map(|&(s, d)| {
                let t =
                    stmt.query(&session, &[Value::Int(s as i64), Value::Int(d as i64)]).unwrap();
                (0..t.row_count())
                    .filter_map(|r| match &t.row(r)[0] {
                        Value::Str(line) => {
                            let at = line.find("settled=")?;
                            Some(line[at..].to_string())
                        }
                        _ => None,
                    })
                    .collect::<Vec<_>>()
                    .join("; ")
            })
            .collect()
    };
    let (pre_details, ch_cold_build) = {
        let ddb = Database::open(&dir).unwrap();
        ddb.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL, w INTEGER NOT NULL)")
            .unwrap();
        let mut stmt_rows = String::new();
        for i in 0..src.len() {
            if !stmt_rows.is_empty() {
                stmt_rows.push_str(", ");
            }
            stmt_rows.push_str(&format!("({}, {}, {})", src[i], dst[i], weights[i]));
            if stmt_rows.len() > 200_000 {
                ddb.execute(&format!("INSERT INTO e VALUES {stmt_rows}")).unwrap();
                stmt_rows.clear();
            }
        }
        if !stmt_rows.is_empty() {
            ddb.execute(&format!("INSERT INTO e VALUES {stmt_rows}")).unwrap();
        }
        let t0 = Instant::now();
        ddb.execute("CREATE PATH INDEX pc ON e EDGE (s, d) WEIGHT w USING CONTRACTION").unwrap();
        let cold = t0.elapsed();
        ddb.execute("CHECKPOINT").unwrap();
        (settled_details(&ddb, restart_pairs), cold)
    };
    let t0 = Instant::now();
    let ddb = Database::open(&dir).unwrap();
    let warm_open = t0.elapsed();
    let t0 = Instant::now();
    let post_details = settled_details(&ddb, restart_pairs);
    let warm_queries = t0.elapsed();
    assert_eq!(ddb.path_indexes().builds(), 0, "warm start must not rebuild the CH index");
    assert_eq!(
        pre_details, post_details,
        "accelerated plans must settle identically across a restart"
    );
    drop(ddb);
    let _ = std::fs::remove_dir_all(&dir);
    let warm_rows = vec![
        vec!["cold: CREATE PATH INDEX (CH build)".to_string(), fmt_duration(ch_cold_build)],
        vec![
            "warm: Database::open (snapshot + index restore)".to_string(),
            fmt_duration(warm_open),
        ],
        vec![
            format!("warm: {} accelerated queries (0 rebuilds)", restart_pairs.len()),
            fmt_duration(warm_queries),
        ],
    ];
    println!("{}", render_table(&["warm restart", "wall"], &warm_rows));
    println!(
        "restart check: settled= details byte-identical on {} pairs; warm open is {:.1}x faster \
         than the cold CH build.",
        restart_pairs.len(),
        ch_cold_build.as_secs_f64() / warm_open.as_secs_f64().max(1e-9),
    );

    if cfg.json {
        // One line of machine-readable results, last on stdout, so CI and
        // tracking scripts can diff runs without scraping the tables.
        let us = |d: Duration| Json::Int((d.as_secs_f64() * 1e6) as i64);
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let report = obj(vec![
            ("vertices", Json::Int(cfg.vertices() as i64)),
            ("threads", Json::Int(cfg.threads as i64)),
            ("seed", Json::Int(cfg.seed as i64)),
            (
                "build",
                obj(vec![
                    ("alt_us", us(alt_build)),
                    ("ch_us", us(ch_build)),
                    ("landmarks", Json::Int(lm.len() as i64)),
                    ("shortcuts", Json::Int(ch.shortcuts() as i64)),
                ]),
            ),
            (
                "p2p",
                obj(vec![
                    ("pairs", Json::Int(pairs.len() as i64)),
                    (
                        "plain",
                        obj(vec![
                            ("settled", Json::Int(plain_settled as i64)),
                            ("wall_us", us(plain_time)),
                        ]),
                    ),
                    (
                        "alt",
                        obj(vec![
                            ("settled", Json::Int(alt_settled as i64)),
                            ("wall_us", us(alt_time)),
                        ]),
                    ),
                    (
                        "ch",
                        obj(vec![
                            ("settled", Json::Int(ch_settled as i64)),
                            ("wall_us", us(ch_time)),
                        ]),
                    ),
                ]),
            ),
            (
                "matrix",
                obj(vec![
                    ("sources", Json::Int(m_sources.len() as i64)),
                    ("targets", Json::Int(m_targets.len() as i64)),
                    (
                        "plain",
                        obj(vec![
                            ("settled", Json::Int(plain_m_settled as i64)),
                            ("wall_us", us(plain_m_time)),
                        ]),
                    ),
                    (
                        "alt_multi",
                        obj(vec![
                            ("settled", Json::Int(am.settled as i64)),
                            ("wall_us", us(alt_m_time)),
                        ]),
                    ),
                    (
                        "ch_m2m",
                        obj(vec![
                            ("settled", Json::Int(cm.settled as i64)),
                            ("bucket_entries", Json::Int(cm.bucket_entries as i64)),
                            ("wall_us", us(ch_m_time)),
                        ]),
                    ),
                ]),
            ),
        ]);
        println!("{}", report.encode());
    }
}
