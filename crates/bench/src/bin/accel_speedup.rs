//! The three-way point-to-point benchmark: plain Dijkstra versus the two
//! acceleration tiers — ALT (goal-directed bidirectional A\* over a
//! landmark index) and CH (bidirectional upward Dijkstra over a
//! contraction hierarchy) — reported as **settled vertices** (the work the
//! preprocessing prunes), preprocessing cost (build time, index size,
//! shortcut count) and query wall time. First at the graph-runtime layer,
//! then end-to-end through SQL sessions (`path_index = off`, a
//! `USING LANDMARKS(k)` index, a `USING CONTRACTION` index), asserting
//! identical results on the way.
//!
//! The benchmark graph is road-like — a `side × side` bidirectional grid
//! with random integer weights — because that is the workload contraction
//! hierarchies are built for; `--vertices` is rounded down to a square.
//!
//! `cargo run -p gsql-bench --release --bin accel_speedup -- \
//!      --vertices 20000 --pairs 100 --landmarks 16`

use gsql_bench::report::{arg_value, fmt_duration, render_table};
use gsql_core::Database;
use gsql_storage::Value;
use rand::prelude::*;
use std::time::Instant;

struct Config {
    side: u32,
    pairs: usize,
    landmarks: u32,
    seed: u64,
    threads: usize,
}

impl Config {
    fn from_args() -> Config {
        let args: Vec<String> = std::env::args().collect();
        let get = |flag: &str, default: u64| {
            arg_value(&args, flag).and_then(|s| s.parse().ok()).unwrap_or(default)
        };
        let vertices = get("--vertices", 20_000);
        Config {
            side: (vertices as f64).sqrt() as u32,
            pairs: get("--pairs", 100) as usize,
            landmarks: get("--landmarks", 16) as u32,
            seed: get("--seed", 42),
            threads: get("--threads", 4) as usize,
        }
    }

    fn vertices(&self) -> u32 {
        self.side * self.side
    }
}

/// A `side × side` grid, each lattice edge present in both directions with
/// independent strictly positive integer weights.
fn generate(cfg: &Config) -> (Vec<u32>, Vec<u32>, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let side = cfg.side;
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut w = Vec::new();
    let mut edge = |s: u32, d: u32, rng: &mut StdRng| {
        src.push(s);
        dst.push(d);
        w.push(rng.gen_range(1..10));
    };
    for r in 0..side {
        for c in 0..side {
            let v = r * side + c;
            if c + 1 < side {
                edge(v, v + 1, &mut rng);
                edge(v + 1, v, &mut rng);
            }
            if r + 1 < side {
                edge(v, v + side, &mut rng);
                edge(v + side, v, &mut rng);
            }
        }
    }
    (src, dst, w)
}

fn main() {
    let cfg = Config::from_args();
    println!(
        "accel speedup: {}x{} grid (|V| = {}), {} point-to-point pairs, {} landmarks, seed {}\n",
        cfg.side,
        cfg.side,
        cfg.vertices(),
        cfg.pairs,
        cfg.landmarks,
        cfg.seed
    );
    let (src, dst, weights) = generate(&cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xa17);
    let pairs: Vec<(u32, u32)> = (0..cfg.pairs)
        .map(|_| (rng.gen_range(0..cfg.vertices()), rng.gen_range(0..cfg.vertices())))
        .collect();

    // ---------------------------------------------- graph-runtime layer
    let t = cfg.threads;
    let graph = gsql_graph::Csr::from_edges_with_threads(cfg.vertices(), &src, &dst, t).unwrap();
    let reverse = gsql_graph::reverse_csr_with_threads(&graph, t);
    let wf = graph.permute_weights_int_with_threads(&weights, t).unwrap();
    let wb = reverse.permute_weights_int_with_threads(&weights, t).unwrap();

    let t0 = Instant::now();
    let lm =
        gsql_accel::Landmarks::build(&graph, &reverse, Some((&wf, &wb)), cfg.landmarks as usize, t);
    let alt_build = t0.elapsed();
    let t0 = Instant::now();
    let ch = gsql_accel::ContractionHierarchy::build(&graph, Some(&wf), t);
    let ch_build = t0.elapsed();
    let mib = |bytes: usize| format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0));
    let build_rows = vec![
        vec![
            format!("ALT ({} landmarks)", lm.len()),
            fmt_duration(alt_build),
            mib(lm.memory_bytes()),
            "-".to_string(),
        ],
        vec![
            "CH".to_string(),
            fmt_duration(ch_build),
            mib(ch.memory_bytes()),
            ch.shortcuts().to_string(),
        ],
    ];
    println!("{}", render_table(&["index", "build", "size", "shortcuts"], &build_rows));

    let mut scratch = gsql_graph::DijkstraIntScratch::new();
    let mut plain_settled = 0usize;
    let t_plain = Instant::now();
    let mut plain_dists = Vec::with_capacity(pairs.len());
    for &(s, d) in &pairs {
        gsql_graph::dijkstra_int_into(&graph, s, &[d], &wf, &mut scratch);
        plain_settled += scratch.settled_count();
        let dist = scratch.dist[d as usize];
        plain_dists.push(if dist == u64::MAX { None } else { Some(dist) });
    }
    let plain_time = t_plain.elapsed();

    let mut alt_settled = 0usize;
    let t_alt = Instant::now();
    for (i, &(s, d)) in pairs.iter().enumerate() {
        let r = gsql_accel::alt_bidirectional(&graph, &reverse, Some((&wf, &wb)), &lm, s, d);
        alt_settled += r.settled;
        assert_eq!(r.dist, plain_dists[i], "ALT diverged from Dijkstra on pair {i}");
    }
    let alt_time = t_alt.elapsed();

    let mut ch_settled = 0usize;
    let t_ch = Instant::now();
    for (i, &(s, d)) in pairs.iter().enumerate() {
        let r = gsql_accel::ch_query(&ch, s, d);
        ch_settled += r.settled;
        assert_eq!(r.dist, plain_dists[i], "CH diverged from Dijkstra on pair {i}");
    }
    let ch_time = t_ch.elapsed();

    let per_query = |settled: usize| format!("{:.0}", settled as f64 / pairs.len() as f64);
    let rows = vec![
        vec![
            "plain Dijkstra".to_string(),
            plain_settled.to_string(),
            per_query(plain_settled),
            fmt_duration(plain_time),
        ],
        vec![
            "ALT bidirectional A*".to_string(),
            alt_settled.to_string(),
            per_query(alt_settled),
            fmt_duration(alt_time),
        ],
        vec![
            "CH upward Dijkstra".to_string(),
            ch_settled.to_string(),
            per_query(ch_settled),
            fmt_duration(ch_time),
        ],
    ];
    println!("{}", render_table(&["search", "settled (total)", "settled/query", "wall"], &rows));
    println!(
        "pruning vs plain: ALT {:.1}x, CH {:.1}x fewer settled vertices; CH settles {:.1}x \
         fewer than ALT\nwall vs plain: ALT {:.1}x, CH {:.1}x (runtime layer)\n",
        plain_settled as f64 / alt_settled.max(1) as f64,
        plain_settled as f64 / ch_settled.max(1) as f64,
        alt_settled as f64 / ch_settled.max(1) as f64,
        plain_time.as_secs_f64() / alt_time.as_secs_f64().max(1e-9),
        plain_time.as_secs_f64() / ch_time.as_secs_f64().max(1e-9),
    );

    // --------------------------------------------------- end-to-end SQL
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL, w INTEGER NOT NULL)")
        .unwrap();
    let mut stmt_rows = String::new();
    for i in 0..src.len() {
        if !stmt_rows.is_empty() {
            stmt_rows.push_str(", ");
        }
        stmt_rows.push_str(&format!("({}, {}, {})", src[i], dst[i], weights[i]));
        if stmt_rows.len() > 200_000 {
            db.execute(&format!("INSERT INTO e VALUES {stmt_rows}")).unwrap();
            stmt_rows.clear();
        }
    }
    if !stmt_rows.is_empty() {
        db.execute(&format!("INSERT INTO e VALUES {stmt_rows}")).unwrap();
    }
    db.execute("CREATE GRAPH INDEX ge ON e EDGE (s, d)").unwrap();

    // Three configurations: no path index, a landmark index, a contraction
    // index. Indexes are created between runs; the optimizer prefers CH
    // over ALT once both exist, so each run exercises the intended tier.
    let sql = "SELECT CHEAPEST SUM(f: f.w) AS cost WHERE ? REACHES ? OVER e f EDGE (s, d)";
    let mut sql_rows = Vec::new();
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for (label, setting, ddl) in [
        ("path_index = off", "off", None),
        (
            "ALT index",
            "on",
            Some(format!(
                "CREATE PATH INDEX pa ON e EDGE (s, d) WEIGHT w USING LANDMARKS({})",
                cfg.landmarks
            )),
        ),
        (
            "CH index",
            "on",
            Some("CREATE PATH INDEX pc ON e EDGE (s, d) WEIGHT w USING CONTRACTION".to_string()),
        ),
    ] {
        if let Some(ddl) = ddl {
            db.execute(&ddl).unwrap();
        }
        let session = db.session();
        session.set("path_index", setting).unwrap();
        let stmt = session.prepare(sql).unwrap();
        let t0 = Instant::now();
        let mut results = Vec::with_capacity(pairs.len());
        for &(s, d) in &pairs {
            let t = stmt.query(&session, &[Value::Int(s as i64), Value::Int(d as i64)]).unwrap();
            results.push((0..t.row_count()).map(|r| t.row(r)).next().unwrap_or_default());
        }
        let elapsed = t0.elapsed();
        match &reference {
            None => reference = Some(results),
            Some(expected) => {
                assert_eq!(expected, &results, "{label} must return byte-identical results")
            }
        }
        sql_rows.push(vec![
            label.to_string(),
            fmt_duration(elapsed),
            format!("{:.1} µs", elapsed.as_secs_f64() * 1e6 / pairs.len() as f64),
        ]);
    }
    println!("{}", render_table(&["SQL session", "wall", "per query"], &sql_rows));
    println!("results are byte-identical in all three configurations.");
}
