//! Regenerate the paper's Figure 1a: average latency per query for Q13
//! (unweighted) and the Q14 variant (weighted) across scale factors.
//!
//! `cargo run -p gsql-bench --release --bin fig1a -- --sf 0.1,0.3,1 --reps 50`

use gsql_bench::{print_fig1a, run_fig1a, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("(scale factors: {:?}, {} reps each, seed {})\n", cfg.sfs, cfg.reps, cfg.seed);
    let rows = run_fig1a(&cfg);
    print_fig1a(&rows);
    println!("\nPaper's shape: both curves grow with SF on a log scale; the weighted Q14");
    println!("variant differed from Q13 by ~25% at SF1 shrinking to ~10% at SF300 (their");
    println!("BFS was unoptimized); construction of the graph dominates both.");
}
