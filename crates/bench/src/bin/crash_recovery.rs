//! Kill-9 crash-recovery harness: a writer process appends rows (and
//! periodically checkpoints) until it is killed from outside; a checker
//! process reopens the same directory and verifies the recovered state is
//! a **consistent prefix** of the writer's history.
//!
//! The writer inserts rows `(id, id * 7)` with strictly increasing ids and
//! prints `progress id=<n>` lines, so the checker can assert the recovered
//! row count is contiguous from 1 regardless of where the kill landed —
//! mid-append, mid-checkpoint, or between statements.
//!
//! ```text
//! cargo run -p gsql-bench --release --bin crash_recovery -- --writer DIR &
//! sleep 1; kill -9 $!
//! cargo run -p gsql-bench --release --bin crash_recovery -- --check DIR
//! ```
//!
//! `--checkpoint-every N` (default 256) checkpoints after every N inserts
//! so the kill races snapshot rotation too, not just WAL appends.

use gsql_bench::report::arg_value;
use gsql_core::Database;
use gsql_storage::Value;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(dir) = arg_value(&args, "--writer") {
        writer(&dir, &args);
    } else if let Some(dir) = arg_value(&args, "--check") {
        check(&dir);
    } else {
        eprintln!("usage: crash_recovery --writer DIR [--checkpoint-every N] | --check DIR");
        std::process::exit(2);
    }
}

/// Insert forever (until killed): ids 1, 2, 3, ... with a checkpoint every
/// `--checkpoint-every` rows. Runs until SIGKILL'd by the harness.
fn writer(dir: &str, args: &[String]) {
    let every: u64 =
        arg_value(args, "--checkpoint-every").and_then(|v| v.parse().ok()).unwrap_or(256);
    let db = Database::open(dir).unwrap_or_else(|e| {
        eprintln!("open failed: {e}");
        std::process::exit(1);
    });
    let mut next = 1 + recovered_count(&db, true);
    if next == 1 {
        db.execute("CREATE TABLE ledger (id INTEGER NOT NULL, val INTEGER NOT NULL)").unwrap();
    }
    println!("writer: starting at id={next} (checkpoint every {every})");
    loop {
        db.execute(&format!("INSERT INTO ledger VALUES ({next}, {})", next * 7)).unwrap();
        if next.is_multiple_of(every) {
            db.checkpoint().unwrap();
            println!("progress id={next} (checkpointed)");
        } else if next.is_multiple_of(64) {
            println!("progress id={next}");
        }
        next += 1;
    }
}

/// Reopen the directory and verify the recovered table is exactly the rows
/// `(1, 7), (2, 14), ..., (n, 7n)` for some `n` — no holes, no corruption,
/// no partial statement.
fn check(dir: &str) {
    let db = Database::open(dir).unwrap_or_else(|e| {
        eprintln!("recovery failed: {e}");
        std::process::exit(1);
    });
    let n = recovered_count(&db, false);
    let t = db
        .query(
            "SELECT COUNT(*) AS rows, MIN(id) AS lo, MAX(id) AS hi, SUM(val) AS total FROM ledger",
        )
        .unwrap();
    let get = |i: usize| match t.row(0)[i] {
        Value::Int(v) => v,
        ref other => panic!("expected integer aggregate, got {other:?}"),
    };
    let (rows, total) = (get(0), get(3));
    assert_eq!(rows as u64, n);
    if n > 0 {
        assert_eq!(get(1), 1, "recovered prefix must start at id 1");
        assert_eq!(get(2) as u64, n, "recovered ids must be contiguous (no holes)");
        assert_eq!(total as u64, 7 * n * (n + 1) / 2, "recovered values must be consistent");
    }
    // Recovery must also leave the log writable: append one more row and
    // make sure a second reopen still sees a consistent prefix.
    db.execute(&format!("INSERT INTO ledger VALUES ({}, {})", n + 1, (n + 1) * 7)).unwrap();
    drop(db);
    let db = Database::open(dir).unwrap();
    assert_eq!(recovered_count(&db, false), n + 1);
    println!("recovery ok: consistent prefix of {n} row(s), log writable after recovery");
}

/// Rows currently in `ledger` (0 when the table does not exist yet).
fn recovered_count(db: &Database, allow_missing: bool) -> u64 {
    match db.query("SELECT COUNT(*) AS n FROM ledger") {
        Ok(t) => match t.row(0)[0] {
            Value::Int(n) => n as u64,
            ref other => panic!("expected integer count, got {other:?}"),
        },
        Err(e) if allow_missing => {
            let _ = e;
            0
        }
        Err(e) => {
            eprintln!("recovered database is missing the ledger table: {e}");
            std::process::exit(1);
        }
    }
}
