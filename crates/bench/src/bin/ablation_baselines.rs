//! Ablation 1: the native graph operator vs the paper-§1 "customary" SQL
//! strategies (semi-naive recursion, chain of self-joins) on Q13.
//!
//! `cargo run -p gsql-bench --release --bin ablation_baselines -- --sf 0.1,0.3`

use gsql_bench::{print_ablation_baselines, run_ablation_baselines, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("(scale factors: {:?}, seed {})\n", cfg.sfs, cfg.seed);
    let rows = run_ablation_baselines(&cfg);
    print_ablation_baselines(&rows);
    println!("\nExpectation: the native operator wins by growing factors; the join chain");
    println!("blows up combinatorially on the skewed social graph.");
}
