//! Load benchmark for the HTTP serving tier: M client threads fire a
//! mixed point-to-point / batched shortest-path workload at a
//! `gsql-server` instance and report throughput and tail latency, then
//! shut the server down gracefully and verify nothing in flight was
//! dropped.
//!
//! `cargo run -p gsql-bench --release --bin serve_load -- --sf 0.3 --clients 8 --requests 200`
//!
//! `--smoke` shrinks everything for CI: a tiny dataset, few clients, few
//! requests — it exercises the full client → HTTP → worker → shared plan
//! cache → response path and the drain-at-shutdown invariant in seconds.
//! `--json` appends one machine-readable line (throughput and latency
//! percentiles) for `BENCH_serve.json`.
//!
//! Besides the drain invariant, the run cross-checks the server's own
//! `/metrics` surface: the exposition text must parse, and the total count
//! of the per-endpoint request-latency histogram must equal the settled
//! (`responded`) connections it could have seen — the
//! one-observation-per-response contract.

use gsql_bench::report::{arg_value, fmt_duration};
use gsql_bench::{load_dataset, queries, sample_pairs};
use gsql_obs::{latency_buckets_us, Histogram, HistogramSnapshot};
use gsql_server::json::{self, Json};
use gsql_server::{client, serve, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct LoadConfig {
    sf: f64,
    seed: u64,
    clients: usize,
    requests_per_client: usize,
    workers: usize,
}

impl LoadConfig {
    fn from_args() -> LoadConfig {
        let args: Vec<String> = std::env::args().collect();
        let smoke = args.iter().any(|a| a == "--smoke");
        let mut cfg = if smoke {
            LoadConfig { sf: 0.05, seed: 2017, clients: 4, requests_per_client: 10, workers: 2 }
        } else {
            LoadConfig { sf: 0.3, seed: 2017, clients: 8, requests_per_client: 100, workers: 4 }
        };
        let parse = |flag: &str| arg_value(&args, flag);
        if let Some(v) = parse("--sf").and_then(|v| v.parse().ok()) {
            cfg.sf = v;
        }
        if let Some(v) = parse("--seed").and_then(|v| v.parse().ok()) {
            cfg.seed = v;
        }
        if let Some(v) = parse("--clients").and_then(|v| v.parse().ok()) {
            cfg.clients = v;
        }
        if let Some(v) = parse("--requests").and_then(|v| v.parse().ok()) {
            cfg.requests_per_client = v;
        }
        if let Some(v) = parse("--workers").and_then(|v| v.parse().ok()) {
            cfg.workers = v;
        }
        cfg
    }
}

fn query_request(sql: &str, params: &[(i64, i64)]) -> String {
    let flat: Vec<Json> = params.iter().flat_map(|&(s, d)| [Json::Int(s), Json::Int(d)]).collect();
    Json::Object(vec![
        ("sql".to_string(), Json::from(sql)),
        ("params".to_string(), Json::Array(flat)),
    ])
    .encode()
}

fn fmt_us(us: u64) -> String {
    fmt_duration(Duration::from_micros(us))
}

/// Sum every `<name>_count{...}` sample of one histogram family in a
/// Prometheus text exposition body. `None` when the family is absent.
fn exposition_histogram_count(body: &str, name: &str) -> Option<u64> {
    let prefix = format!("{name}_count");
    let mut total = 0u64;
    let mut seen = false;
    for line in body.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else { continue };
        // The rest is either `{labels} value` or ` value`.
        let Some(value) = rest.rsplit(' ').next().and_then(|v| v.parse::<u64>().ok()) else {
            continue;
        };
        total += value;
        seen = true;
    }
    seen.then_some(total)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = LoadConfig::from_args();
    println!(
        "serve_load: sf {}, {} clients x {} requests, {} server workers (seed {})",
        cfg.sf, cfg.clients, cfg.requests_per_client, cfg.workers, cfg.seed
    );

    let dataset = load_dataset(cfg.sf, cfg.seed);
    println!(
        "dataset: {} persons, {} edges, loaded in {}",
        dataset.num_persons,
        dataset.num_edges,
        fmt_duration(dataset.load_time)
    );
    let num_persons = dataset.num_persons;
    let db = Arc::new(dataset.db);

    let server = serve(
        Arc::clone(&db),
        ServerConfig { workers: cfg.workers, queue_depth: 256, ..ServerConfig::default() },
    )
    .expect("server failed to start");
    let addr = server.addr();

    // Client-side latencies go through the same sharded histogram the
    // engine uses — percentiles come off the snapshot, no sorting pass.
    let latencies = Arc::new(Histogram::new(&latency_buckets_us()));
    let t0 = Instant::now();
    let threads: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let pairs = sample_pairs(
                cfg.requests_per_client + 8,
                num_persons,
                cfg.seed.wrapping_add(c as u64),
            );
            let latencies = Arc::clone(&latencies);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut errors = 0u64;
                let mut refused = 0u64;
                for i in 0..cfg.requests_per_client {
                    // Mixed workload: every 4th request is an 8-pair batch
                    // (the Figure-1b shape); the rest are point-to-point.
                    let body = if i % 4 == 3 {
                        let batch = &pairs[i % 8..i % 8 + 8];
                        query_request(&queries::batched_q13(batch), &[])
                    } else {
                        query_request(queries::Q13, &pairs[i..i + 1])
                    };
                    let started = Instant::now();
                    match client::post(addr, "/query", &body) {
                        Ok(resp) if resp.status == 200 => {
                            ok += 1;
                            latencies.observe_duration(started.elapsed());
                        }
                        Ok(resp) if resp.status == 503 => {
                            refused += 1;
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Ok(resp) => {
                            errors += 1;
                            eprintln!("request failed: {} {}", resp.status, resp.body);
                        }
                        Err(e) => {
                            errors += 1;
                            eprintln!("request failed: {e}");
                        }
                    }
                }
                (ok, errors, refused)
            })
        })
        .collect();

    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut refused = 0u64;
    for thread in threads {
        let (o, e, r) = thread.join().expect("client thread panicked");
        ok += o;
        errors += e;
        refused += r;
    }
    let wall = t0.elapsed();

    let stats_doc = client::get(addr, "/stats").ok().and_then(|r| json::parse(&r.body).ok());
    let metrics_body = client::get(addr, "/metrics").ok().map(|r| r.body);
    let report = server.shutdown();

    let snap: HistogramSnapshot = latencies.snapshot();
    let throughput = ok as f64 / wall.as_secs_f64();
    println!("\n{ok} ok, {errors} errors, {refused} refused (503) in {}", fmt_duration(wall));
    println!("throughput: {throughput:.0} req/s across {} clients", cfg.clients);
    println!(
        "latency: p50 {} / p95 {} / p99 {} / max {}",
        fmt_us(snap.percentile(0.50)),
        fmt_us(snap.percentile(0.95)),
        fmt_us(snap.percentile(0.99)),
        fmt_us(snap.max),
    );
    if let Some(doc) = &stats_doc {
        if let Some(cache) = doc.get("plan_cache") {
            println!(
                "shared plan cache: {} hits / {} misses / {} entries",
                cache.get("hits").and_then(Json::as_i64).unwrap_or(0),
                cache.get("misses").and_then(Json::as_i64).unwrap_or(0),
                cache.get("entries").and_then(Json::as_i64).unwrap_or(0),
            );
        }
    }
    println!(
        "shutdown: {} admitted, {} responded, {} refused, {} dropped",
        report.admitted,
        report.responded,
        report.refused,
        report.dropped()
    );

    // Cross-check the /metrics surface. The histogram is rendered before
    // the /metrics request itself settles, so it covers every response up
    // to and including the preceding /stats probe: responded minus one.
    let mut metrics_failures = 0u64;
    match metrics_body
        .as_deref()
        .and_then(|b| exposition_histogram_count(b, "gsql_http_request_duration_microseconds"))
    {
        Some(histogram_total) => {
            let expected = report.responded.saturating_sub(1);
            if histogram_total == expected {
                println!(
                    "metrics: request-latency histogram count {histogram_total} matches \
                     responded (one observation per settled response)"
                );
            } else {
                eprintln!(
                    "FAIL: /metrics request-latency histogram count {histogram_total} != \
                     {expected} (responded at render time)"
                );
                metrics_failures += 1;
            }
        }
        None => {
            eprintln!(
                "FAIL: /metrics missing or unparseable \
                 (no gsql_http_request_duration_microseconds_count samples)"
            );
            metrics_failures += 1;
        }
    }

    if report.dropped() > 0 {
        eprintln!("FAIL: graceful shutdown dropped {} in-flight queries", report.dropped());
        std::process::exit(1);
    }
    if errors > 0 {
        eprintln!("FAIL: {errors} requests errored");
        std::process::exit(1);
    }
    if metrics_failures > 0 {
        eprintln!("FAIL: /metrics cross-check failed");
        std::process::exit(1);
    }
    println!("PASS: zero dropped in-flight queries, zero errors, /metrics consistent");

    if args.iter().any(|a| a == "--json") {
        // One line of machine-readable results, last on stdout, so CI and
        // tracking scripts can diff runs without scraping the tables
        // (`tail -n 1 > BENCH_serve.json`).
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let line = obj(vec![
            ("clients", Json::Int(cfg.clients as i64)),
            ("requests_per_client", Json::Int(cfg.requests_per_client as i64)),
            ("workers", Json::Int(cfg.workers as i64)),
            ("seed", Json::Int(cfg.seed as i64)),
            ("ok", Json::Int(ok as i64)),
            ("errors", Json::Int(errors as i64)),
            ("refused", Json::Int(refused as i64)),
            ("wall_us", Json::Int(wall.as_micros() as i64)),
            ("throughput_rps", Json::Float(throughput)),
            (
                "latency_us",
                obj(vec![
                    ("p50", Json::from(snap.percentile(0.50))),
                    ("p95", Json::from(snap.percentile(0.95))),
                    ("p99", Json::from(snap.percentile(0.99))),
                    ("max", Json::from(snap.max)),
                    ("mean", Json::from(snap.mean())),
                ]),
            ),
            ("admitted", Json::from(report.admitted)),
            ("responded", Json::from(report.responded)),
            ("dropped", Json::from(report.dropped())),
        ]);
        println!("{}", line.encode());
    }
}
