//! Load benchmark for the HTTP serving tier: M client threads fire a
//! mixed point-to-point / batched shortest-path workload at a
//! `gsql-server` instance and report throughput and tail latency, then
//! shut the server down gracefully and verify nothing in flight was
//! dropped.
//!
//! `cargo run -p gsql-bench --release --bin serve_load -- --sf 0.3 --clients 8 --requests 200`
//!
//! `--smoke` shrinks everything for CI: a tiny dataset, few clients, few
//! requests — it exercises the full client → HTTP → worker → shared plan
//! cache → response path and the drain-at-shutdown invariant in seconds.

use gsql_bench::report::{arg_value, fmt_duration};
use gsql_bench::{load_dataset, queries, sample_pairs};
use gsql_server::json::{self, Json};
use gsql_server::{client, serve, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct LoadConfig {
    sf: f64,
    seed: u64,
    clients: usize,
    requests_per_client: usize,
    workers: usize,
}

impl LoadConfig {
    fn from_args() -> LoadConfig {
        let args: Vec<String> = std::env::args().collect();
        let smoke = args.iter().any(|a| a == "--smoke");
        let mut cfg = if smoke {
            LoadConfig { sf: 0.05, seed: 2017, clients: 4, requests_per_client: 10, workers: 2 }
        } else {
            LoadConfig { sf: 0.3, seed: 2017, clients: 8, requests_per_client: 100, workers: 4 }
        };
        let parse = |flag: &str| arg_value(&args, flag);
        if let Some(v) = parse("--sf").and_then(|v| v.parse().ok()) {
            cfg.sf = v;
        }
        if let Some(v) = parse("--seed").and_then(|v| v.parse().ok()) {
            cfg.seed = v;
        }
        if let Some(v) = parse("--clients").and_then(|v| v.parse().ok()) {
            cfg.clients = v;
        }
        if let Some(v) = parse("--requests").and_then(|v| v.parse().ok()) {
            cfg.requests_per_client = v;
        }
        if let Some(v) = parse("--workers").and_then(|v| v.parse().ok()) {
            cfg.workers = v;
        }
        cfg
    }
}

fn query_request(sql: &str, params: &[(i64, i64)]) -> String {
    let flat: Vec<Json> = params.iter().flat_map(|&(s, d)| [Json::Int(s), Json::Int(d)]).collect();
    Json::Object(vec![
        ("sql".to_string(), Json::from(sql)),
        ("params".to_string(), Json::Array(flat)),
    ])
    .encode()
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let cfg = LoadConfig::from_args();
    println!(
        "serve_load: sf {}, {} clients x {} requests, {} server workers (seed {})",
        cfg.sf, cfg.clients, cfg.requests_per_client, cfg.workers, cfg.seed
    );

    let dataset = load_dataset(cfg.sf, cfg.seed);
    println!(
        "dataset: {} persons, {} edges, loaded in {}",
        dataset.num_persons,
        dataset.num_edges,
        fmt_duration(dataset.load_time)
    );
    let num_persons = dataset.num_persons;
    let db = Arc::new(dataset.db);

    let server = serve(
        Arc::clone(&db),
        ServerConfig { workers: cfg.workers, queue_depth: 256, ..ServerConfig::default() },
    )
    .expect("server failed to start");
    let addr = server.addr();

    let t0 = Instant::now();
    let threads: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let pairs = sample_pairs(
                cfg.requests_per_client + 8,
                num_persons,
                cfg.seed.wrapping_add(c as u64),
            );
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(cfg.requests_per_client);
                let mut errors = 0u64;
                let mut refused = 0u64;
                for i in 0..cfg.requests_per_client {
                    // Mixed workload: every 4th request is an 8-pair batch
                    // (the Figure-1b shape); the rest are point-to-point.
                    let body = if i % 4 == 3 {
                        let batch = &pairs[i % 8..i % 8 + 8];
                        query_request(&queries::batched_q13(batch), &[])
                    } else {
                        query_request(queries::Q13, &pairs[i..i + 1])
                    };
                    let started = Instant::now();
                    match client::post(addr, "/query", &body) {
                        Ok(resp) if resp.status == 200 => latencies.push(started.elapsed()),
                        Ok(resp) if resp.status == 503 => {
                            refused += 1;
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Ok(resp) => {
                            errors += 1;
                            eprintln!("request failed: {} {}", resp.status, resp.body);
                        }
                        Err(e) => {
                            errors += 1;
                            eprintln!("request failed: {e}");
                        }
                    }
                }
                (latencies, errors, refused)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut errors = 0u64;
    let mut refused = 0u64;
    for thread in threads {
        let (l, e, r) = thread.join().expect("client thread panicked");
        latencies.extend(l);
        errors += e;
        refused += r;
    }
    let wall = t0.elapsed();

    let stats_doc = client::get(addr, "/stats").ok().and_then(|r| json::parse(&r.body).ok());
    let report = server.shutdown();

    latencies.sort_unstable();
    let ok = latencies.len();
    let throughput = ok as f64 / wall.as_secs_f64();
    println!("\n{ok} ok, {errors} errors, {refused} refused (503) in {}", fmt_duration(wall));
    println!("throughput: {throughput:.0} req/s across {} clients", cfg.clients);
    println!(
        "latency: p50 {} / p95 {} / p99 {} / max {}",
        fmt_duration(percentile(&latencies, 0.50)),
        fmt_duration(percentile(&latencies, 0.95)),
        fmt_duration(percentile(&latencies, 0.99)),
        fmt_duration(latencies.last().copied().unwrap_or(Duration::ZERO)),
    );
    if let Some(doc) = stats_doc {
        if let Some(cache) = doc.get("plan_cache") {
            println!(
                "shared plan cache: {} hits / {} misses / {} entries",
                cache.get("hits").and_then(Json::as_i64).unwrap_or(0),
                cache.get("misses").and_then(Json::as_i64).unwrap_or(0),
                cache.get("entries").and_then(Json::as_i64).unwrap_or(0),
            );
        }
    }
    println!(
        "shutdown: {} admitted, {} responded, {} refused, {} dropped",
        report.admitted,
        report.responded,
        report.refused,
        report.dropped()
    );

    if report.dropped() > 0 {
        eprintln!("FAIL: graceful shutdown dropped {} in-flight queries", report.dropped());
        std::process::exit(1);
    }
    if errors > 0 {
        eprintln!("FAIL: {errors} requests errored");
        std::process::exit(1);
    }
    println!("PASS: zero dropped in-flight queries, zero errors");
}
