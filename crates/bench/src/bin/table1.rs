//! Regenerate the paper's Table 1: graph sizes per scale factor.
//!
//! `cargo run -p gsql-bench --release --bin table1 -- --sf 1,3,10`

use gsql_bench::{print_table1, run_table1, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("(scale factors: {:?}, seed {})\n", cfg.sfs, cfg.seed);
    let rows = run_table1(&cfg);
    print_table1(&rows);
    println!("\nPaper's published values: SF1 9.892k/362k, SF3 ~24k/~1132k, SF10 ~65k/~3894k,");
    println!("SF30 ~165k/~12115k, SF100 ~448k/~39998k, SF300 ~1128k/~119225k.");
}
