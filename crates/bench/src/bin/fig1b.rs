//! Regenerate the paper's Figure 1b: Q13 latency per pair at batch sizes
//! 1..128 — batching amortizes graph construction almost linearly.
//!
//! `cargo run -p gsql-bench --release --bin fig1b -- --sf 0.1,1 --reps 64`

use gsql_bench::{print_fig1b, run_fig1b, BenchConfig, FIG1B_BATCH_SIZES};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("(scale factors: {:?}, seed {})\n", cfg.sfs, cfg.seed);
    let points = run_fig1b(&cfg, FIG1B_BATCH_SIZES);
    print_fig1b(&points, FIG1B_BATCH_SIZES);
    println!("\nPaper's shape: per-pair time decreases almost linearly with batch size,");
    println!("amortizing the graph-construction cost.");
}
