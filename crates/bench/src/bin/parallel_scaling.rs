//! The parallel-scaling benchmark: a many-source batched Q13 statement
//! executed with `SET threads = 1` versus `SET threads = N`. Each distinct
//! source is one independent traversal, so on a multi-core machine the
//! speedup approaches the thread count (the acceptance target is ≥ 2× at
//! 4 threads on ≥ 4 cores).
//!
//! `cargo run -p gsql-bench --release --bin parallel_scaling -- \
//!      --sf 0.1,1 --reps 10 --batch 64 --threads 4`

use gsql_bench::{print_parallel_scaling, run_parallel_scaling, BenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = BenchConfig::from_args();
    let batch: usize =
        gsql_bench::report::arg_value(&args, "--batch").and_then(|s| s.parse().ok()).unwrap_or(64);
    let threads: usize = gsql_bench::report::arg_value(&args, "--threads")
        .and_then(|s| s.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(4);
    println!(
        "(scale factors: {:?}, seed {}, batch {batch}, threads {threads}, \
         {} hardware threads available)\n",
        cfg.sfs,
        cfg.seed,
        gsql_parallel_available()
    );
    let rows = run_parallel_scaling(&cfg, batch, threads);
    print_parallel_scaling(&rows);
    println!("\nthreads = 1 runs the exact sequential code path; results are");
    println!("byte-identical at every thread count (only wall clock changes).");
}

/// Hardware threads, read through the engine's own default.
fn gsql_parallel_available() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}
