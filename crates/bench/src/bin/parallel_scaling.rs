//! The parallel-scaling benchmark, two scenarios:
//!
//! * default — a many-source batched Q13 statement executed with
//!   `SET threads = 1` versus `SET threads = N`. Each distinct source is
//!   one independent traversal, so on a multi-core machine the speedup
//!   approaches the thread count (the acceptance target is ≥ 2× at
//!   4 threads on ≥ 4 cores).
//! * `--pipeline` — the morsel-driven relational pipeline: a fused
//!   scan→filter→hash-join→aggregate statement over generated road data,
//!   measured under the barrier executor (`SET pipeline = off`) and the
//!   pipelined executor, each at 1 and N threads, asserting byte-identical
//!   results across all four sessions.
//!
//! `cargo run -p gsql-bench --release --bin parallel_scaling -- \
//!      --sf 0.1,1 --reps 10 --batch 64 --threads 4`
//! `cargo run -p gsql-bench --release --bin parallel_scaling -- \
//!      --pipeline --threads 4 --width 200 --height 200 --json`
//!
//! `--smoke` shrinks the pipeline scenario for CI; `--json` appends one
//! line of machine-readable results after the tables.

use gsql_bench::report::arg_value;
use gsql_bench::{
    print_parallel_scaling, print_pipeline_scaling, run_parallel_scaling, run_pipeline_scaling,
    BenchConfig,
};
use gsql_server::json::Json;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads: usize =
        arg_value(&args, "--threads").and_then(|s| s.parse().ok()).filter(|&t| t >= 1).unwrap_or(4);
    if args.iter().any(|a| a == "--pipeline") {
        pipeline_scenario(&args, threads);
        return;
    }
    let cfg = BenchConfig::from_args();
    let batch: usize = arg_value(&args, "--batch").and_then(|s| s.parse().ok()).unwrap_or(64);
    println!(
        "(scale factors: {:?}, seed {}, batch {batch}, threads {threads}, \
         {} hardware threads available)\n",
        cfg.sfs,
        cfg.seed,
        gsql_parallel_available()
    );
    let rows = run_parallel_scaling(&cfg, batch, threads);
    print_parallel_scaling(&rows);
    println!("\nthreads = 1 runs the exact sequential code path; results are");
    println!("byte-identical at every thread count (only wall clock changes).");
}

/// The morsel-driven pipeline scenario (`--pipeline`).
fn pipeline_scenario(args: &[String], threads: usize) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let get = |flag: &str, default: u64| {
        arg_value(args, flag).and_then(|s| s.parse().ok()).filter(|&v| v >= 1).unwrap_or(default)
    };
    let width = get("--width", if smoke { 60 } else { 200 }) as u32;
    let height = get("--height", if smoke { 60 } else { 200 }) as u32;
    let reps = get("--reps", if smoke { 3 } else { 10 }) as usize;
    // Small enough that every worker sees many morsels even on the smoke
    // grid, large enough to keep per-morsel overhead negligible.
    let morsel_rows = get("--morsel-rows", if smoke { 1024 } else { 8192 }) as usize;
    let seed = get("--seed", 2017);
    println!(
        "pipeline scaling: {width}x{height} road grid, seed {seed}, {reps} reps, \
         threads {threads}, morsel_rows {morsel_rows}, {} hardware threads available\n",
        gsql_parallel_available()
    );
    let row = run_pipeline_scaling(width, height, reps, threads, morsel_rows, seed);
    print_pipeline_scaling(&row);
    if args.iter().any(|a| a == "--json") {
        // One line of machine-readable results, last on stdout, so CI and
        // tracking scripts can diff runs without scraping the tables.
        let us = |d: Duration| Json::Int((d.as_secs_f64() * 1e6) as i64);
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let report = obj(vec![
            ("edges", Json::Int(row.edges as i64)),
            ("threads", Json::Int(row.threads as i64)),
            ("morsel_rows", Json::Int(row.morsel_rows as i64)),
            ("seed", Json::Int(seed as i64)),
            (
                "barrier",
                obj(vec![("seq_us", us(row.barrier_seq)), ("par_us", us(row.barrier_par))]),
            ),
            (
                "pipelined",
                obj(vec![("seq_us", us(row.pipeline_seq)), ("par_us", us(row.pipeline_par))]),
            ),
            ("speedup_vs_barrier", Json::Float(row.speedup_vs_barrier())),
            ("thread_scaling", Json::Float(row.thread_scaling())),
        ]);
        println!("{}", report.encode());
    }
}

/// Hardware threads, read through the engine's own default.
fn gsql_parallel_available() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}
