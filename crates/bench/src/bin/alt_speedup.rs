//! The ALT point-to-point benchmark: plain Dijkstra versus goal-directed
//! bidirectional A\* over a landmark index, reported as **settled vertices**
//! (the work the preprocessing prunes) and wall time — first at the graph
//! runtime layer, then end-to-end through SQL sessions with
//! `SET path_index = on` vs `off` (asserting identical results on the way).
//!
//! `cargo run -p gsql-bench --release --bin alt_speedup -- \
//!      --vertices 20000 --degree 4 --pairs 100 --landmarks 16`

use gsql_bench::report::{arg_value, fmt_duration, render_table};
use gsql_core::Database;
use gsql_storage::Value;
use rand::prelude::*;
use std::time::Instant;

struct Config {
    vertices: u32,
    degree: usize,
    pairs: usize,
    landmarks: u32,
    seed: u64,
}

impl Config {
    fn from_args() -> Config {
        let args: Vec<String> = std::env::args().collect();
        let get = |flag: &str, default: u64| {
            arg_value(&args, flag).and_then(|s| s.parse().ok()).unwrap_or(default)
        };
        Config {
            vertices: get("--vertices", 20_000) as u32,
            degree: get("--degree", 4) as usize,
            pairs: get("--pairs", 100) as usize,
            landmarks: get("--landmarks", 16) as u32,
            seed: get("--seed", 42),
        }
    }
}

/// A road-ish graph: a ring (so almost everything is connected, paths are
/// long) plus random shortcut edges, strictly positive integer weights.
fn generate(cfg: &Config) -> (Vec<u32>, Vec<u32>, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.vertices;
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut w = Vec::new();
    for v in 0..n {
        src.push(v);
        dst.push((v + 1) % n);
        w.push(rng.gen_range(1..10));
        for _ in 1..cfg.degree {
            src.push(v);
            dst.push(rng.gen_range(0..n));
            w.push(rng.gen_range(1..100));
        }
    }
    (src, dst, w)
}

fn main() {
    let cfg = Config::from_args();
    println!(
        "ALT speedup: |V| = {}, degree = {}, {} point-to-point pairs, {} landmarks, seed {}\n",
        cfg.vertices, cfg.degree, cfg.pairs, cfg.landmarks, cfg.seed
    );
    let (src, dst, weights) = generate(&cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xa17);
    let pairs: Vec<(u32, u32)> = (0..cfg.pairs)
        .map(|_| (rng.gen_range(0..cfg.vertices), rng.gen_range(0..cfg.vertices)))
        .collect();

    // ---------------------------------------------- graph-runtime layer
    let graph = gsql_graph::Csr::from_edges_with_threads(cfg.vertices, &src, &dst, 4).unwrap();
    let reverse = gsql_graph::reverse_csr_with_threads(&graph, 4);
    let wf = graph.permute_weights_int_with_threads(&weights, 4).unwrap();
    let wb = reverse.permute_weights_int_with_threads(&weights, 4).unwrap();

    let t0 = Instant::now();
    let lm =
        gsql_accel::Landmarks::build(&graph, &reverse, Some((&wf, &wb)), cfg.landmarks as usize, 4);
    let build_time = t0.elapsed();
    println!(
        "landmark index: {} landmarks, {:.1} MiB, built in {}\n",
        lm.len(),
        lm.memory_bytes() as f64 / (1024.0 * 1024.0),
        fmt_duration(build_time)
    );

    let mut scratch = gsql_graph::DijkstraIntScratch::new();
    let mut plain_settled = 0usize;
    let mut alt_settled = 0usize;
    let t_plain = Instant::now();
    let mut plain_dists = Vec::with_capacity(pairs.len());
    for &(s, d) in &pairs {
        gsql_graph::dijkstra_int_into(&graph, s, &[d], &wf, &mut scratch);
        plain_settled += scratch.settled_count();
        let dist = scratch.dist[d as usize];
        plain_dists.push(if dist == u64::MAX { None } else { Some(dist) });
    }
    let plain_time = t_plain.elapsed();
    let t_alt = Instant::now();
    for (i, &(s, d)) in pairs.iter().enumerate() {
        let r = gsql_accel::alt_bidirectional(&graph, &reverse, Some((&wf, &wb)), &lm, s, d);
        alt_settled += r.settled;
        assert_eq!(r.dist, plain_dists[i], "ALT diverged from Dijkstra on pair {i}");
    }
    let alt_time = t_alt.elapsed();

    let rows = vec![
        vec![
            "plain Dijkstra".to_string(),
            plain_settled.to_string(),
            format!("{:.0}", plain_settled as f64 / pairs.len() as f64),
            fmt_duration(plain_time),
        ],
        vec![
            "ALT bidirectional A*".to_string(),
            alt_settled.to_string(),
            format!("{:.0}", alt_settled as f64 / pairs.len() as f64),
            fmt_duration(alt_time),
        ],
    ];
    println!("{}", render_table(&["search", "settled (total)", "settled/query", "wall"], &rows));
    println!(
        "pruning: {:.1}x fewer settled vertices, {:.1}x wall-time speedup (runtime layer)\n",
        plain_settled as f64 / alt_settled.max(1) as f64,
        plain_time.as_secs_f64() / alt_time.as_secs_f64().max(1e-9),
    );

    // --------------------------------------------------- end-to-end SQL
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL, w INTEGER NOT NULL)")
        .unwrap();
    let mut stmt_rows = String::new();
    for i in 0..src.len() {
        if !stmt_rows.is_empty() {
            stmt_rows.push_str(", ");
        }
        stmt_rows.push_str(&format!("({}, {}, {})", src[i], dst[i], weights[i]));
        if stmt_rows.len() > 200_000 {
            db.execute(&format!("INSERT INTO e VALUES {stmt_rows}")).unwrap();
            stmt_rows.clear();
        }
    }
    if !stmt_rows.is_empty() {
        db.execute(&format!("INSERT INTO e VALUES {stmt_rows}")).unwrap();
    }
    db.execute("CREATE GRAPH INDEX ge ON e EDGE (s, d)").unwrap();
    db.execute(&format!(
        "CREATE PATH INDEX pe ON e EDGE (s, d) WEIGHT w USING LANDMARKS({})",
        cfg.landmarks
    ))
    .unwrap();

    let sql = "SELECT CHEAPEST SUM(f: f.w) AS cost WHERE ? REACHES ? OVER e f EDGE (s, d)";
    let mut sql_rows = Vec::new();
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for setting in ["off", "on"] {
        let session = db.session();
        session.set("path_index", setting).unwrap();
        let stmt = session.prepare(sql).unwrap();
        let t0 = Instant::now();
        let mut results = Vec::with_capacity(pairs.len());
        for &(s, d) in &pairs {
            let t = stmt.query(&session, &[Value::Int(s as i64), Value::Int(d as i64)]).unwrap();
            results.push((0..t.row_count()).map(|r| t.row(r)).next().unwrap_or_default());
        }
        let elapsed = t0.elapsed();
        match &reference {
            None => reference = Some(results),
            Some(expected) => {
                assert_eq!(expected, &results, "path_index = on must return byte-identical results")
            }
        }
        sql_rows.push(vec![
            format!("path_index = {setting}"),
            fmt_duration(elapsed),
            format!("{:.1} µs", elapsed.as_secs_f64() * 1e6 / pairs.len() as f64),
        ]);
    }
    println!("{}", render_table(&["SQL session", "wall", "per query"], &sql_rows));
    println!("results are byte-identical in both configurations.");
}
