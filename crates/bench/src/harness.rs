//! Measurement harness for the paper's experiments.
//!
//! Latency is measured end to end, in process: parse → bind → optimize →
//! execute → materialize the full result (the substitution for the paper's
//! JDBC client; see DESIGN.md §4). Query parameters are uniform random
//! person ids, as in §4 of the paper.

use crate::queries;
use crate::report::{fmt_duration, render_table};
use gsql_core::Database;
use gsql_datagen::{SnbDataset, SnbParams};
use gsql_storage::Value;
use rand::prelude::*;
use rand::rngs::SmallRng;
use std::time::{Duration, Instant};

/// Shared benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Scale factors to sweep. The paper uses 1, 3, 10, 30, 100, 300;
    /// defaults here are sized for a small machine.
    pub sfs: Vec<f64>,
    /// Repetitions per measurement (the paper uses 1000 for SF ≤ 30 and
    /// 100 beyond).
    pub reps: usize,
    /// RNG seed for datasets and parameter sampling.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig { sfs: vec![0.1, 0.3, 1.0], reps: 25, seed: 2017 }
    }
}

impl BenchConfig {
    /// Build a config from command-line arguments (`--sf`, `--reps`,
    /// `--seed`).
    pub fn from_args() -> BenchConfig {
        let args: Vec<String> = std::env::args().collect();
        let mut cfg = BenchConfig::default();
        if let Some(s) = crate::report::arg_value(&args, "--sf") {
            let sfs = crate::report::parse_sf_list(&s);
            if !sfs.is_empty() {
                cfg.sfs = sfs;
            }
        }
        if let Some(r) = crate::report::arg_value(&args, "--reps") {
            if let Ok(r) = r.parse() {
                cfg.reps = r;
            }
        }
        if let Some(s) = crate::report::arg_value(&args, "--seed") {
            if let Ok(s) = s.parse() {
                cfg.seed = s;
            }
        }
        cfg
    }
}

/// A generated dataset loaded into an engine instance.
pub struct LoadedDataset {
    /// The database with `persons` and `friends` tables.
    pub db: Database,
    /// Scale factor.
    pub sf: f64,
    /// |V| (person count).
    pub num_persons: u64,
    /// |E| (directed edge count).
    pub num_edges: u64,
    /// Wall-clock time spent generating + loading.
    pub load_time: Duration,
}

/// Generate and load the SNB-like dataset for one scale factor.
pub fn load_dataset(sf: f64, seed: u64) -> LoadedDataset {
    let t0 = Instant::now();
    let data = SnbDataset::generate(SnbParams { scale_factor: sf, seed });
    let db = data.into_database().expect("fresh database");
    LoadedDataset {
        db,
        sf,
        num_persons: data.num_persons,
        num_edges: data.num_edges,
        load_time: t0.elapsed(),
    }
}

/// Sample `n` uniform random person-id pairs (the paper's parameter
/// generation: "randomly generated out of the set of the generated persons
/// and according to a uniform distribution").
pub fn sample_pairs(n: usize, num_persons: u64, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.gen_range(1..=num_persons as i64), rng.gen_range(1..=num_persons as i64)))
        .collect()
}

/// Average end-to-end latency of `sql` over the given parameter pairs.
///
/// The query runs through a prepared session statement: it is parsed,
/// bound and optimized exactly once, and every pair executes from the
/// session's cached plan — the paper's repeated-parameterized-query shape.
pub fn measure_query(db: &Database, sql: &str, pairs: &[(i64, i64)]) -> Duration {
    let session = db.session();
    let stmt = session.prepare(sql).expect("benchmark query must parse");
    let t0 = Instant::now();
    for &(s, d) in pairs {
        stmt.execute(&session, &[Value::Int(s), Value::Int(d)])
            .expect("benchmark query must execute");
    }
    t0.elapsed() / pairs.len().max(1) as u32
}

// ------------------------------------------------------------------ Table 1

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Scale factor.
    pub sf: f64,
    /// Generated vertex count.
    pub vertices: u64,
    /// Generated directed edge count.
    pub edges: u64,
    /// Generation + load time.
    pub load_time: Duration,
}

/// Regenerate Table 1: the graph size per scale factor.
pub fn run_table1(cfg: &BenchConfig) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for &sf in &cfg.sfs {
        let d = load_dataset(sf, cfg.seed);
        rows.push(Table1Row {
            sf,
            vertices: d.num_persons,
            edges: d.num_edges,
            load_time: d.load_time,
        });
    }
    rows
}

/// Print Table 1 in the paper's format (×10³ counts).
pub fn print_table1(rows: &[Table1Row]) {
    println!("Table 1: Size of the graph at different scale factors");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.sf),
                format!("{:.3}", r.vertices as f64 / 1e3),
                format!("{:.0}", r.edges as f64 / 1e3),
                fmt_duration(r.load_time),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["Scale factor", "Vertices x10^3", "Edges x10^3", "datagen time"], &body)
    );
}

// ---------------------------------------------------------------- Figure 1a

/// One measurement of Figure 1a.
#[derive(Debug, Clone)]
pub struct Fig1aRow {
    /// Scale factor.
    pub sf: f64,
    /// Dataset sizes (for context).
    pub vertices: u64,
    /// Directed edges.
    pub edges: u64,
    /// Average latency of Q13 (unweighted shortest path).
    pub q13: Duration,
    /// Average latency of the weighted Q14 variant.
    pub q14: Duration,
}

/// Regenerate Figure 1a: average per-query latency of Q13 and the Q14
/// variant across scale factors.
pub fn run_fig1a(cfg: &BenchConfig) -> Vec<Fig1aRow> {
    let mut rows = Vec::new();
    for &sf in &cfg.sfs {
        let d = load_dataset(sf, cfg.seed);
        let pairs = sample_pairs(cfg.reps, d.num_persons, cfg.seed ^ 0xf16a);
        // One warm-up each, outside the measurement (JIT-free but warms
        // allocator and page cache).
        measure_query(&d.db, queries::Q13, &pairs[..1.min(pairs.len())]);
        let q13 = measure_query(&d.db, queries::Q13, &pairs);
        let q14 = measure_query(&d.db, queries::Q14_VARIANT, &pairs);
        rows.push(Fig1aRow { sf, vertices: d.num_persons, edges: d.num_edges, q13, q14 });
    }
    rows
}

/// Print Figure 1a as a table (the paper plots it on a log scale).
pub fn print_fig1a(rows: &[Fig1aRow]) {
    println!("Figure 1a: average latency per query (single pair per query)");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let ratio = r.q14.as_secs_f64() / r.q13.as_secs_f64().max(1e-12);
            vec![
                format!("{}", r.sf),
                format!("{}", r.vertices),
                format!("{}", r.edges),
                fmt_duration(r.q13),
                fmt_duration(r.q14),
                format!("{ratio:.2}x"),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["SF", "|V|", "|E|", "Q13 unweighted", "Q14var weighted", "Q14/Q13"], &body)
    );
}

// ---------------------------------------------------------------- Figure 1b

/// One series point of Figure 1b.
#[derive(Debug, Clone)]
pub struct Fig1bPoint {
    /// Scale factor of the series.
    pub sf: f64,
    /// Batch size (pairs per statement).
    pub batch: usize,
    /// Average latency **per pair**: statement latency / batch size.
    pub per_pair: Duration,
}

/// The paper's batch-size sweep.
pub const FIG1B_BATCH_SIZES: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Regenerate Figure 1b: Q13 executed with `batch` pairs per statement;
/// reported time is statement latency divided by the batch size.
pub fn run_fig1b(cfg: &BenchConfig, batch_sizes: &[usize]) -> Vec<Fig1bPoint> {
    let mut points = Vec::new();
    for &sf in &cfg.sfs {
        let d = load_dataset(sf, cfg.seed);
        for &batch in batch_sizes {
            // Repeat the statement a few times and average; fewer reps for
            // bigger batches keeps total work bounded.
            let reps = (cfg.reps / batch).clamp(1, cfg.reps);
            let mut total = Duration::ZERO;
            for rep in 0..reps {
                let pairs = sample_pairs(
                    batch,
                    d.num_persons,
                    cfg.seed ^ (batch as u64) ^ ((rep as u64) << 32),
                );
                let sql = queries::batched_q13(&pairs);
                let t0 = Instant::now();
                d.db.query(&sql).expect("batched query must run");
                total += t0.elapsed();
            }
            points.push(Fig1bPoint { sf, batch, per_pair: total / (reps * batch) as u32 });
        }
    }
    points
}

/// Print Figure 1b as one series per scale factor.
pub fn print_fig1b(points: &[Fig1bPoint], batch_sizes: &[usize]) {
    println!("Figure 1b: latency per pair (statement latency / batch size)");
    let mut sfs: Vec<f64> = points.iter().map(|p| p.sf).collect();
    sfs.dedup();
    let mut headers: Vec<String> = vec!["SF".to_string()];
    headers.extend(batch_sizes.iter().map(|b| format!("batch {b}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let body: Vec<Vec<String>> = sfs
        .iter()
        .map(|&sf| {
            let mut row = vec![format!("{sf}")];
            for &b in batch_sizes {
                let p = points
                    .iter()
                    .find(|p| p.sf == sf && p.batch == b)
                    .expect("every (sf, batch) point measured");
                row.push(fmt_duration(p.per_pair));
            }
            row
        })
        .collect();
    print!("{}", render_table(&header_refs, &body));
}

// ------------------------------------------------------- Parallel scaling

/// One row of the parallel-scaling benchmark.
#[derive(Debug, Clone)]
pub struct ParallelScalingRow {
    /// Scale factor.
    pub sf: f64,
    /// Pairs per statement (mostly distinct sources — one traversal each).
    pub batch: usize,
    /// Worker threads of the parallel measurement.
    pub threads: usize,
    /// Statement latency with `SET threads = 1` (exact sequential path).
    pub sequential: Duration,
    /// Statement latency with `SET threads = <threads>`.
    pub parallel: Duration,
}

impl ParallelScalingRow {
    /// Sequential / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.sequential.as_secs_f64() / self.parallel.as_secs_f64().max(1e-12)
    }
}

/// Average latency of one SQL statement executed `reps` times in a session
/// with `SET threads = n`.
fn measure_statement_with_threads(
    db: &Database,
    sql: &str,
    reps: usize,
    threads: usize,
) -> Duration {
    let session = db.session();
    session.set("threads", &threads.to_string()).expect("valid threads setting");
    let stmt = session.prepare(sql).expect("benchmark query must parse");
    // One warm-up outside the measurement.
    stmt.execute(&session, &[]).expect("benchmark query must execute");
    let t0 = Instant::now();
    for _ in 0..reps {
        stmt.execute(&session, &[]).expect("benchmark query must execute");
    }
    t0.elapsed() / reps.max(1) as u32
}

/// The many-source batched shortest-path benchmark: one statement holding
/// `batch` random pairs (distinct sources ⇒ independent traversals), run
/// with `SET threads = 1` versus `SET threads = <threads>`. This is the
/// workload the source-parallel runtime targets; on a multi-core machine
/// the speedup approaches the thread count.
pub fn run_parallel_scaling(
    cfg: &BenchConfig,
    batch: usize,
    threads: usize,
) -> Vec<ParallelScalingRow> {
    let mut rows = Vec::new();
    for &sf in &cfg.sfs {
        let d = load_dataset(sf, cfg.seed);
        let pairs = sample_pairs(batch, d.num_persons, cfg.seed ^ 0x9a11);
        let sql = queries::batched_q13(&pairs);
        let reps = cfg.reps.clamp(1, 25);
        let sequential = measure_statement_with_threads(&d.db, &sql, reps, 1);
        let parallel = measure_statement_with_threads(&d.db, &sql, reps, threads);
        rows.push(ParallelScalingRow { sf, batch, threads, sequential, parallel });
    }
    rows
}

/// Print the parallel-scaling benchmark.
pub fn print_parallel_scaling(rows: &[ParallelScalingRow]) {
    println!("Parallel scaling: many-source batched Q13, SET threads = 1 vs N");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.sf),
                format!("{}", r.batch),
                fmt_duration(r.sequential),
                format!("{}", r.threads),
                fmt_duration(r.parallel),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    print!("{}", render_table(&["SF", "batch", "threads=1", "N", "threads=N", "speedup"], &body));
}

// ------------------------------------------------------- Pipeline scaling

/// The pipeline benchmark statement: scan → filter → hash-join probe →
/// grouped aggregate over the road network — the shape the morsel-driven
/// executor fuses into a single pipeline (the join build side and the
/// final sort are breakers). Integer aggregates only, so the result is
/// byte-identical at every thread count *and* morsel granularity.
pub const PIPELINE_SCALING_SQL: &str = "SELECT r1.minutes AS bucket, COUNT(*) AS n, \
     SUM(r2.minutes) AS total, MIN(r2.dst) AS lo, MAX(r2.dst) AS hi \
     FROM roads r1 JOIN roads r2 ON r1.dst = r2.src \
     WHERE r1.minutes > 3 AND r2.minutes <= 7 \
     GROUP BY r1.minutes ORDER BY bucket";

/// One row of the pipeline-scaling benchmark.
#[derive(Debug, Clone)]
pub struct PipelineScalingRow {
    /// Edge rows in the generated road network.
    pub edges: usize,
    /// Worker threads of the parallel measurements.
    pub threads: usize,
    /// Morsel granularity (`SET morsel_rows`) of the pipelined runs.
    pub morsel_rows: usize,
    /// Barrier executor (`SET pipeline = off`), 1 thread.
    pub barrier_seq: Duration,
    /// Barrier executor, N threads.
    pub barrier_par: Duration,
    /// Pipelined executor (`SET pipeline = on`), 1 thread.
    pub pipeline_seq: Duration,
    /// Pipelined executor, N threads.
    pub pipeline_par: Duration,
}

impl PipelineScalingRow {
    /// Barrier vs pipelined wall clock at N threads — the headline number.
    pub fn speedup_vs_barrier(&self) -> f64 {
        self.barrier_par.as_secs_f64() / self.pipeline_par.as_secs_f64().max(1e-12)
    }

    /// Pipelined executor thread scaling: 1 thread vs N.
    pub fn thread_scaling(&self) -> f64 {
        self.pipeline_seq.as_secs_f64() / self.pipeline_par.as_secs_f64().max(1e-12)
    }
}

/// Generate a `width × height` road grid and load it as table `roads`.
/// Returns the database and the edge-row count.
pub fn load_road_network(width: u32, height: u32, seed: u64) -> (Database, usize) {
    let roads = gsql_datagen::road::grid_network(width, height, 9, seed);
    let db = Database::new();
    db.execute(
        "CREATE TABLE roads (src INTEGER NOT NULL, dst INTEGER NOT NULL, \
         minutes INTEGER NOT NULL)",
    )
    .expect("fresh database");
    let mut batch = String::new();
    for row in roads.rows() {
        if !batch.is_empty() {
            batch.push_str(", ");
        }
        batch.push_str(&format!("({}, {}, {})", row[0], row[1], row[2]));
        if batch.len() > 200_000 {
            db.execute(&format!("INSERT INTO roads VALUES {batch}")).expect("road load");
            batch.clear();
        }
    }
    if !batch.is_empty() {
        db.execute(&format!("INSERT INTO roads VALUES {batch}")).expect("road load");
    }
    (db, roads.row_count())
}

/// Average latency of the pipeline statement in a session configured with
/// the given executor and width; also returns the materialized result so
/// callers can assert cross-configuration identity.
fn measure_pipeline_statement(
    db: &Database,
    reps: usize,
    threads: usize,
    pipeline: bool,
    morsel_rows: usize,
) -> (Duration, Vec<Vec<Value>>) {
    let session = db.session();
    session.set("threads", &threads.to_string()).expect("valid threads setting");
    session.set("pipeline", if pipeline { "on" } else { "off" }).expect("valid pipeline setting");
    session.set("morsel_rows", &morsel_rows.to_string()).expect("valid morsel_rows setting");
    let stmt = session.prepare(PIPELINE_SCALING_SQL).expect("benchmark query must parse");
    // The warm-up run doubles as the result sample.
    let warm = stmt.query(&session, &[]).expect("benchmark query must execute");
    let rows: Vec<Vec<Value>> = (0..warm.row_count()).map(|i| warm.row(i)).collect();
    let t0 = Instant::now();
    for _ in 0..reps {
        stmt.execute(&session, &[]).expect("benchmark query must execute");
    }
    (t0.elapsed() / reps.max(1) as u32, rows)
}

/// The morsel-driven pipeline benchmark: the fused
/// scan→filter→probe→aggregate statement over generated road data, run in
/// four sessions — barrier executor (`pipeline = off`) and pipelined
/// executor (`pipeline = on`), each at 1 thread and at `threads` — and
/// asserting all four produce byte-identical result tables.
pub fn run_pipeline_scaling(
    width: u32,
    height: u32,
    reps: usize,
    threads: usize,
    morsel_rows: usize,
    seed: u64,
) -> PipelineScalingRow {
    let (db, edges) = load_road_network(width, height, seed);
    let mut times = Vec::with_capacity(4);
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for (pipeline, t) in [(false, 1), (false, threads), (true, 1), (true, threads)] {
        let (elapsed, rows) = measure_pipeline_statement(&db, reps, t, pipeline, morsel_rows);
        match &reference {
            None => reference = Some(rows),
            Some(expected) => assert_eq!(
                expected, &rows,
                "pipeline={pipeline} threads={t} must return byte-identical results"
            ),
        }
        times.push(elapsed);
    }
    PipelineScalingRow {
        edges,
        threads,
        morsel_rows,
        barrier_seq: times[0],
        barrier_par: times[1],
        pipeline_seq: times[2],
        pipeline_par: times[3],
    }
}

/// Print the pipeline-scaling benchmark.
pub fn print_pipeline_scaling(row: &PipelineScalingRow) {
    println!(
        "Pipeline scaling: fused scan->filter->probe->aggregate over {} road edges \
         (morsel_rows = {})",
        row.edges, row.morsel_rows
    );
    let body = vec![
        vec![
            "barrier (pipeline = off)".to_string(),
            fmt_duration(row.barrier_seq),
            format!("{}", row.threads),
            fmt_duration(row.barrier_par),
            format!(
                "{:.2}x",
                row.barrier_seq.as_secs_f64() / row.barrier_par.as_secs_f64().max(1e-12)
            ),
        ],
        vec![
            "pipelined (pipeline = on)".to_string(),
            fmt_duration(row.pipeline_seq),
            format!("{}", row.threads),
            fmt_duration(row.pipeline_par),
            format!("{:.2}x", row.thread_scaling()),
        ],
    ];
    print!(
        "{}",
        render_table(&["executor", "threads=1", "N", "threads=N", "thread scaling"], &body)
    );
    println!(
        "pipelined vs barrier at {} threads: {:.2}x; results byte-identical in all four sessions.",
        row.threads,
        row.speedup_vs_barrier()
    );
}

// ---------------------------------------------------------------- Ablations

/// One row of the baseline ablation.
#[derive(Debug, Clone)]
pub struct AblationBaselineRow {
    /// Scale factor.
    pub sf: f64,
    /// Native `REACHES`/`CHEAPEST SUM` operator.
    pub native: Duration,
    /// Semi-naive frontier-join (recursive CTE cost model).
    pub seminaive: Duration,
    /// Bounded self-join chain; `None` when it exceeded its row cap.
    pub khop: Option<Duration>,
}

/// Compare the native operator against the §1 baselines on Q13.
pub fn run_ablation_baselines(cfg: &BenchConfig) -> Vec<AblationBaselineRow> {
    use gsql_core::baseline::{khop_join_distance, seminaive_distance};
    let mut rows = Vec::new();
    for &sf in &cfg.sfs {
        let d = load_dataset(sf, cfg.seed);
        let pairs = sample_pairs(cfg.reps.min(10), d.num_persons, cfg.seed ^ 0xab1a);
        let native = measure_query(&d.db, queries::Q13, &pairs);

        let edges = d.db.catalog().get("friends").expect("friends table loaded");
        let t0 = Instant::now();
        for &(s, dd) in &pairs {
            seminaive_distance(&edges, 0, 1, &Value::Int(s), &Value::Int(dd))
                .expect("baseline runs");
        }
        let seminaive = t0.elapsed() / pairs.len() as u32;

        let t0 = Instant::now();
        let mut khop_ok = true;
        for &(s, dd) in &pairs {
            // Depth 6 with a 50M-row cap: beyond that the chain-of-joins
            // strategy has effectively failed.
            if khop_join_distance(&edges, 0, 1, &Value::Int(s), &Value::Int(dd), 6, 50_000_000)
                .is_err()
            {
                khop_ok = false;
                break;
            }
        }
        let khop = khop_ok.then(|| t0.elapsed() / pairs.len() as u32);
        rows.push(AblationBaselineRow { sf, native, seminaive, khop });
    }
    rows
}

/// Print the baseline ablation.
pub fn print_ablation_baselines(rows: &[AblationBaselineRow]) {
    println!("Ablation 1: native graph operator vs customary SQL strategies (Q13)");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.sf),
                fmt_duration(r.native),
                fmt_duration(r.seminaive),
                r.khop.map(fmt_duration).unwrap_or_else(|| "blew row cap".to_string()),
                format!("{:.1}x", r.seminaive.as_secs_f64() / r.native.as_secs_f64().max(1e-12)),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["SF", "native", "semi-naive (rec. CTE)", "6-hop join chain", "CTE/native"],
            &body
        )
    );
}

/// One row of the graph-index ablation.
#[derive(Debug, Clone)]
pub struct AblationIndexRow {
    /// Scale factor.
    pub sf: f64,
    /// Average Q13 latency without an index (CSR built per query).
    pub without_index: Duration,
    /// Average Q13 latency with `CREATE GRAPH INDEX` (cached CSR).
    pub with_index: Duration,
}

/// Compare per-query graph construction against the §6 graph index.
pub fn run_ablation_graph_index(cfg: &BenchConfig) -> Vec<AblationIndexRow> {
    let mut rows = Vec::new();
    for &sf in &cfg.sfs {
        let d = load_dataset(sf, cfg.seed);
        let pairs = sample_pairs(cfg.reps, d.num_persons, cfg.seed ^ 0x1dce);
        let without_index = measure_query(&d.db, queries::Q13, &pairs);
        d.db.execute("CREATE GRAPH INDEX friends_graph ON friends EDGE (src, dst)")
            .expect("index creation");
        // One warm-up query so one-time setup attributable to the index
        // (e.g. the lazy reverse CSR used by bidirectional BFS) is built
        // outside the measurement, like the index itself.
        measure_query(&d.db, queries::Q13, &pairs[..1]);
        let with_index = measure_query(&d.db, queries::Q13, &pairs);
        rows.push(AblationIndexRow { sf, without_index, with_index });
    }
    rows
}

/// Print the graph-index ablation.
pub fn print_ablation_graph_index(rows: &[AblationIndexRow]) {
    println!("Ablation 2: per-query graph construction vs CREATE GRAPH INDEX (Q13)");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.sf),
                fmt_duration(r.without_index),
                fmt_duration(r.with_index),
                format!(
                    "{:.1}x",
                    r.without_index.as_secs_f64() / r.with_index.as_secs_f64().max(1e-12)
                ),
            ]
        })
        .collect();
    print!("{}", render_table(&["SF", "no index", "graph index", "speedup"], &body));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny smoke test keeping the whole harness runnable under
    /// `cargo test` (full runs happen through the binaries).
    #[test]
    fn harness_smoke() {
        let cfg = BenchConfig { sfs: vec![0.01], reps: 3, seed: 1 };
        let t1 = run_table1(&cfg);
        assert_eq!(t1.len(), 1);
        assert!(t1[0].vertices > 0 && t1[0].edges > 0);
        let f1a = run_fig1a(&cfg);
        assert_eq!(f1a.len(), 1);
        assert!(f1a[0].q13 > Duration::ZERO);
        let f1b = run_fig1b(&cfg, &[1, 4]);
        assert_eq!(f1b.len(), 2);
        let ab = run_ablation_baselines(&cfg);
        assert!(ab[0].seminaive > Duration::ZERO);
        let ai = run_ablation_graph_index(&cfg);
        assert!(ai[0].with_index <= ai[0].without_index * 50);
        let ps = run_parallel_scaling(&cfg, 8, 4);
        assert_eq!(ps.len(), 1);
        assert!(ps[0].sequential > Duration::ZERO && ps[0].parallel > Duration::ZERO);
        assert!(ps[0].speedup() > 0.0);
    }

    /// The pipeline benchmark asserts cross-configuration byte-identity
    /// internally; the smoke test keeps that assertion (and the road
    /// loader) exercised under `cargo test`.
    #[test]
    fn pipeline_scaling_smoke() {
        let row = run_pipeline_scaling(12, 12, 2, 4, 37, 5);
        assert!(row.edges > 0);
        assert!(row.barrier_par > Duration::ZERO && row.pipeline_par > Duration::ZERO);
        assert!(row.speedup_vs_barrier() > 0.0 && row.thread_scaling() > 0.0);
    }

    /// The batched statement must return identical result sets under
    /// `threads = 1` and `threads = 8` (the engine's determinism contract,
    /// checked here at the harness level too).
    #[test]
    fn batched_results_identical_across_threads() {
        let d = load_dataset(0.01, 99);
        let pairs = sample_pairs(16, d.num_persons, 77);
        let sql = queries::batched_q13(&pairs);
        let s1 = d.db.session();
        s1.set("threads", "1").unwrap();
        let seq = s1.query(&sql).unwrap();
        let s8 = d.db.session();
        s8.set("threads", "8").unwrap();
        let par = s8.query(&sql).unwrap();
        assert_eq!(seq.row_count(), par.row_count());
        for i in 0..seq.row_count() {
            assert_eq!(seq.row(i), par.row(i), "row {i}");
        }
    }

    #[test]
    fn pair_sampling_is_deterministic_and_in_range() {
        let a = sample_pairs(50, 100, 9);
        let b = sample_pairs(50, 100, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(s, d)| (1..=100).contains(&s) && (1..=100).contains(&d)));
    }
}
