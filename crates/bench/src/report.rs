//! Plain-text reporting helpers (aligned tables, duration formatting).

use std::time::Duration;

/// Format a duration in engineering style (µs/ms/s), as the paper's
/// log-scale plots suggest reading them.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Render rows as an aligned text table with a header.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!("| {h:<w$} "));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!("| {cell:<w$} "));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Parse `--flag value`-style arguments: returns the value after `flag`.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Parse a comma-separated float list (for `--sf 1,3,10`).
pub fn parse_sf_list(s: &str) -> Vec<f64> {
    s.split(',').filter_map(|t| t.trim().parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0 µs");
    }

    #[test]
    fn tables_align() {
        let t = render_table(
            &["sf", "time"],
            &[vec!["1".into(), "10 ms".into()], vec!["300".into(), "1 s".into()]],
        );
        assert!(t.contains("| sf  | time  |"));
        assert!(t.contains("| 300 | 1 s   |"));
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> =
            ["--sf", "1,3", "--reps", "10"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&args, "--sf").as_deref(), Some("1,3"));
        assert_eq!(arg_value(&args, "--reps").as_deref(), Some("10"));
        assert_eq!(arg_value(&args, "--nope"), None);
        assert_eq!(parse_sf_list("1, 3,10"), vec![1.0, 3.0, 10.0]);
    }
}
