//! The benchmark queries, as SQL text.

/// LDBC SNB Interactive **Q13**: the length of the unweighted shortest path
/// between two given persons (paper §4: `CHEAPEST SUM(1)`).
pub const Q13: &str =
    "SELECT CHEAPEST SUM(1) AS distance WHERE ? REACHES ? OVER friends EDGE (src, dst)";

/// The paper's **Q14 variant**: one weighted shortest path using the
/// precomputed affinity weights. The weights are doubled and cast to
/// INTEGER exactly as in appendix A.4, which keeps the radix queue on the
/// fast integer path.
pub const Q14_VARIANT: &str =
    "SELECT CHEAPEST SUM(f: CAST(weight * 2 AS INTEGER)) AS (cost, path) \
     WHERE ? REACHES ? OVER friends f EDGE (src, dst)";

/// A float-weighted Q14 flavour (binary-heap Dijkstra) used by the
/// algorithm ablation.
pub const Q14_FLOAT: &str = "SELECT CHEAPEST SUM(f: weight) AS (cost, path) \
     WHERE ? REACHES ? OVER friends f EDGE (src, dst)";

/// Build the batched Q13 used by Figure 1b: `batch` source/destination
/// pairs evaluated in a single statement through a VALUES CTE.
pub fn batched_q13(pairs: &[(i64, i64)]) -> String {
    let mut values = String::new();
    for (i, (s, d)) in pairs.iter().enumerate() {
        if i > 0 {
            values.push_str(", ");
        }
        values.push_str(&format!("({s}, {d})"));
    }
    format!(
        "WITH pairs (s, d) AS (VALUES {values}) \
         SELECT pairs.s, pairs.d, CHEAPEST SUM(1) AS distance \
         FROM pairs \
         WHERE pairs.s REACHES pairs.d OVER friends EDGE (src, dst)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_parse() {
        for q in [Q13, Q14_VARIANT, Q14_FLOAT, &batched_q13(&[(1, 2), (3, 4)])] {
            gsql_parser::parse_statement(q).unwrap();
        }
    }

    #[test]
    fn batched_query_embeds_all_pairs() {
        let q = batched_q13(&[(1, 2), (3, 4), (5, 6)]);
        assert!(q.contains("(1, 2), (3, 4), (5, 6)"));
    }
}
